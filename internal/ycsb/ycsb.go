// Package ycsb generates YCSB-style workloads (Cooper et al., SoCC'10)
// — the key-value benchmark the Yesquel paper uses to compare against
// NOSQL systems. Workloads A–F are the standard mixes:
//
//	A  update heavy   50% read  / 50% update, zipfian
//	B  read mostly    95% read  /  5% update, zipfian
//	C  read only     100% read            , zipfian
//	D  read latest    95% read  /  5% insert, latest distribution
//	E  short ranges   95% scan  /  5% insert, zipfian, scans <= 100
//	F  read-mod-write 50% read  / 50% RMW  , zipfian
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one operation type in a workload mix.
type OpKind uint8

const (
	// OpRead reads one record by key.
	OpRead OpKind = iota
	// OpUpdate overwrites one field of one record.
	OpUpdate
	// OpInsert adds a new record.
	OpInsert
	// OpScan reads a short ordered range.
	OpScan
	// OpRMW reads a record then writes it back modified.
	OpRMW
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	}
	return "?"
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     int64 // record number
	ScanLen int   // for OpScan
}

// Workload identifies one of the standard mixes.
type Workload byte

// Standard workloads.
const (
	WorkloadA Workload = 'A'
	WorkloadB Workload = 'B'
	WorkloadC Workload = 'C'
	WorkloadD Workload = 'D'
	WorkloadE Workload = 'E'
	WorkloadF Workload = 'F'
)

// KeyName formats a record number as its canonical key string.
func KeyName(n int64) string { return fmt.Sprintf("user%012d", n) }

// ValueSize is the payload size of one record field.
const ValueSize = 100

// Value deterministically generates record n's payload.
func Value(n int64) []byte {
	out := make([]byte, ValueSize)
	seed := uint64(n)*0x9e3779b97f4a7c15 + 1
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] = 'a' + byte(seed%26)
	}
	return out
}

// Generator produces a stream of operations for one workload. Not safe
// for concurrent use; give each worker its own (with distinct seeds).
type Generator struct {
	kind    Workload
	rng     *rand.Rand
	zipf    *Zipfian
	records int64 // current record count (grows with inserts)
	maxScan int

	insertBase int64 // disjoint insert keyspace per worker
	inserted   int64
}

// SetInsertBase gives this generator a private keyspace for inserts so
// concurrent workers do not insert colliding keys. Keys are
// insertBase+0, insertBase+1, ...
func (g *Generator) SetInsertBase(base int64) { g.insertBase = base }

// NewGenerator returns a generator over an initial keyspace of
// recordCount records.
func NewGenerator(kind Workload, recordCount int64, seed int64) (*Generator, error) {
	if recordCount <= 0 {
		return nil, fmt.Errorf("ycsb: recordCount must be positive")
	}
	switch kind {
	case WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF:
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %c", kind)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		kind:    kind,
		rng:     rng,
		zipf:    NewZipfian(rng, recordCount, DefaultTheta),
		records: recordCount,
		maxScan: 100,
	}, nil
}

// Records returns the current record count (initial + inserts).
func (g *Generator) Records() int64 { return g.records }

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	switch g.kind {
	case WorkloadA:
		if p < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey()}
	case WorkloadB:
		if p < 0.95 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey()}
	case WorkloadC:
		return Op{Kind: OpRead, Key: g.zipfKey()}
	case WorkloadD:
		if p < 0.95 {
			return Op{Kind: OpRead, Key: g.latestKey()}
		}
		return g.insert()
	case WorkloadE:
		if p < 0.95 {
			return Op{Kind: OpScan, Key: g.zipfKey(), ScanLen: 1 + g.rng.Intn(g.maxScan)}
		}
		return g.insert()
	default: // F
		if p < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpRMW, Key: g.zipfKey()}
	}
}

func (g *Generator) insert() Op {
	var k int64
	if g.insertBase > 0 {
		k = g.insertBase + g.inserted
		g.inserted++
	} else {
		k = g.records
		g.records++
	}
	return Op{Kind: OpInsert, Key: k}
}

// zipfKey draws a zipfian-popular record, scattered over the keyspace
// (the standard YCSB hashing so popular records are not neighbours).
func (g *Generator) zipfKey() int64 {
	r := g.zipf.Next()
	return fnvScatter(r) % g.records
}

// latestKey draws keys skewed toward the most recently inserted.
func (g *Generator) latestKey() int64 {
	r := g.zipf.Next() // 0 is most popular
	k := g.records - 1 - r
	if k < 0 {
		k = 0
	}
	return k
}

func fnvScatter(n int64) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(n >> (8 * i) & 0xff)
		h *= 1099511628211
	}
	v := int64(h & math.MaxInt64)
	return v
}

// DefaultTheta is the standard YCSB zipfian constant.
const DefaultTheta = 0.99

// Zipfian draws integers in [0, n) with a zipfian distribution using
// the Gray et al. "quickly generating billion-record" method (the same
// algorithm YCSB uses).
type Zipfian struct {
	rng   *rand.Rand
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	z2    float64
}

// NewZipfian returns a zipfian source over [0, n).
func NewZipfian(rng *rand.Rand, n int64, theta float64) *Zipfian {
	z := &Zipfian{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.z2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.z2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value; rank 0 is the most popular.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// Uniform draws integers uniformly in [0, n) — used for the uniform
// variant of the scalability experiment.
type Uniform struct {
	rng *rand.Rand
	n   int64
}

// NewUniform returns a uniform source over [0, n).
func NewUniform(rng *rand.Rand, n int64) *Uniform { return &Uniform{rng: rng, n: n} }

// Next draws the next value.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.n) }
