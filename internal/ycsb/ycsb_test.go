package ycsb

import (
	"math/rand"
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		kind      Workload
		wantKinds map[OpKind]float64 // expected fraction, +-0.05
	}{
		{WorkloadA, map[OpKind]float64{OpRead: 0.5, OpUpdate: 0.5}},
		{WorkloadB, map[OpKind]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{WorkloadC, map[OpKind]float64{OpRead: 1.0}},
		{WorkloadD, map[OpKind]float64{OpRead: 0.95, OpInsert: 0.05}},
		{WorkloadE, map[OpKind]float64{OpScan: 0.95, OpInsert: 0.05}},
		{WorkloadF, map[OpKind]float64{OpRead: 0.5, OpRMW: 0.5}},
	}
	const n = 20000
	for _, tc := range cases {
		g, err := NewGenerator(tc.kind, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[OpKind]int)
		for i := 0; i < n; i++ {
			op := g.Next()
			counts[op.Kind]++
			if op.Kind != OpInsert && (op.Key < 0 || op.Key >= g.Records()) {
				t.Fatalf("workload %c: key %d out of range", tc.kind, op.Key)
			}
			if op.Kind == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
				t.Fatalf("scan len %d", op.ScanLen)
			}
		}
		for k, want := range tc.wantKinds {
			got := float64(counts[k]) / n
			if got < want-0.05 || got > want+0.05 {
				t.Errorf("workload %c: %s fraction %.3f, want %.2f", tc.kind, k, got, want)
			}
		}
		for k := range counts {
			if _, ok := tc.wantKinds[k]; !ok {
				t.Errorf("workload %c: unexpected op kind %s", tc.kind, k)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipfian(rng, 10000, DefaultTheta)
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 10000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be much more popular than the median rank.
	if counts[0] < n/100 {
		t.Fatalf("rank 0 drew only %d of %d", counts[0], n)
	}
	if counts[0] <= counts[5000]*10 {
		t.Fatalf("distribution not skewed: top %d vs mid %d", counts[0], counts[5000])
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := NewUniform(rng, 100)
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		v := u.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform coverage only %d/100", len(seen))
	}
}

func TestInsertBaseDisjoint(t *testing.T) {
	g1, _ := NewGenerator(WorkloadD, 100, 1)
	g2, _ := NewGenerator(WorkloadD, 100, 2)
	g1.SetInsertBase(1 << 40)
	g2.SetInsertBase(2 << 40)
	keys := make(map[int64]bool)
	for i := 0; i < 5000; i++ {
		for _, g := range []*Generator{g1, g2} {
			op := g.Next()
			if op.Kind == OpInsert {
				if keys[op.Key] {
					t.Fatalf("insert key collision: %d", op.Key)
				}
				keys[op.Key] = true
			}
		}
	}
}

func TestValueDeterministic(t *testing.T) {
	a, b := Value(42), Value(42)
	if string(a) != string(b) {
		t.Fatal("Value not deterministic")
	}
	if len(a) != ValueSize {
		t.Fatalf("value size %d", len(a))
	}
	if string(Value(1)) == string(Value(2)) {
		t.Fatal("distinct records share payload")
	}
}

func TestKeyNameSorted(t *testing.T) {
	if !(KeyName(1) < KeyName(2) && KeyName(99) < KeyName(100)) {
		t.Fatal("KeyName not order-preserving")
	}
}
