// Package baseline provides the two comparators of the paper's
// evaluation, rebuilt on our own substrate (see DESIGN.md,
// substitutions 2 and 3):
//
//   - RawKV: a "NOSQL client" — direct key-value access with no SQL, no
//     tree, and no cross-key transactions, standing in for Redis in the
//     YCSB comparison. It shares Yesquel's RPC stack and storage
//     server, so the measured gap isolates the cost of Yesquel's
//     query-processing and tree layers rather than codebase
//     differences.
//
//   - CentralSQL: a centralized SQL engine — the full query processor
//     bound to a single server process that executes statements on
//     behalf of thin clients, standing in for MySQL in the Wikipedia
//     comparison. Query processing happens at the server (the opposite
//     of Yesquel's embedded processors), so it saturates as clients are
//     added.
package baseline

import (
	"context"
	"hash/fnv"

	"yesquel/internal/clock"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// RawKV is the NOSQL comparator client. Keys are strings hashed to a
// storage server; values are plain byte strings; each operation is a
// single-object, single-server interaction (reads at the latest
// committed version, writes through one-round-trip fast commits).
type RawKV struct {
	c *kvclient.Client
}

// NewRawKV wraps a kv client for raw access.
func NewRawKV(c *kvclient.Client) *RawKV { return &RawKV{c: c} }

// oidFor maps a key to a deterministic OID spread across servers. The
// slot here is only a name: which server actually owns it is decided
// at RPC time by the client's slot directory, so keys keep their OIDs
// across scale-out and simply follow their slot's route.
func (r *RawKV) oidFor(key string) kv.OID {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	slot := uint16(v >> 48)
	return kv.MakeOID(slot, v&((1<<46)-1)) // below the DBT root-id range
}

// Get reads the latest committed value of key.
func (r *RawKV) Get(ctx context.Context, key string) ([]byte, error) {
	tx := r.c.BeginAt(clock.Max)
	defer tx.Abort()
	v, err := tx.Read(ctx, r.oidFor(key))
	if err != nil {
		return nil, err
	}
	return v.Data, nil
}

// Set writes key to value.
func (r *RawKV) Set(ctx context.Context, key string, value []byte) error {
	tx := r.c.Begin()
	tx.Put(r.oidFor(key), kv.NewPlain(value))
	return tx.Commit(ctx)
}

// Delete removes key.
func (r *RawKV) Delete(ctx context.Context, key string) error {
	tx := r.c.Begin()
	tx.Delete(r.oidFor(key))
	return tx.Commit(ctx)
}
