package baseline

import (
	"context"
	"net"

	"yesquel/internal/dbt"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/rpc"
	"yesquel/internal/sql"
	"yesquel/internal/wire"
)

// CentralSQLServer is the centralized-DBMS comparator: one process owns
// both the storage engine and ALL query processing. Clients ship SQL
// text; a fixed pool of worker sessions executes it. Adding clients
// adds no query-processing capacity — the architectural contrast with
// Yesquel's embedded query processors.
type CentralSQLServer struct {
	store    *kvserver.Store
	kvSrv    *kvserver.Server
	rpcSrv   *rpc.Server
	ln       net.Listener
	sessions chan *sql.DB
}

const methodExec = "csql.exec"

// NewCentralSQLServer builds the server with `workers` query-processing
// sessions (the worker-pool size models the DBMS's thread pool).
func NewCentralSQLServer(workers int) (*CentralSQLServer, error) {
	if workers <= 0 {
		workers = 8
	}
	s := &CentralSQLServer{
		store:    kvserver.NewStore(nil, kvserver.Config{}),
		rpcSrv:   rpc.NewServer(),
		sessions: make(chan *sql.DB, workers),
	}
	// The engine's storage is local to this process: sessions reach it
	// through a loopback kv server, mirroring a DBMS whose query layer
	// sits on top of its own storage layer.
	s.kvSrv = kvserver.NewServer(s.store)
	if err := s.kvSrv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	go s.kvSrv.Serve()
	kvc, err := kvclient.Open([]string{s.kvSrv.Addr()})
	if err != nil {
		s.kvSrv.Close()
		return nil, err
	}
	cat := sql.NewCatalog(kvc, dbt.Config{})
	for i := 0; i < workers; i++ {
		s.sessions <- sql.NewDBWithCatalog(kvc, cat)
	}
	s.rpcSrv.Register(methodExec, s.handleExec)
	return s, nil
}

// Listen binds the client-facing address.
func (s *CentralSQLServer) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Serve runs the accept loop (blocking).
func (s *CentralSQLServer) Serve() error { return s.rpcSrv.Serve(s.ln) }

// Addr returns the bound client-facing address.
func (s *CentralSQLServer) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts down both RPC layers.
func (s *CentralSQLServer) Close() {
	s.rpcSrv.Close()
	s.kvSrv.Close()
}

func (s *CentralSQLServer) handleExec(ctx context.Context, req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	query, err := r.String()
	if err != nil {
		return nil, err
	}
	argsRaw, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	args, err := sql.DecodeRow(argsRaw)
	if err != nil {
		return nil, err
	}
	// Acquire a worker session: this is the centralized bottleneck.
	db := <-s.sessions
	defer func() { s.sessions <- db }()
	rows, err := db.Query(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	b := wire.NewBuffer(256)
	b.PutUvarint(uint64(len(rows.Columns)))
	for _, c := range rows.Columns {
		b.PutString(c)
	}
	all := rows.All()
	b.PutUvarint(uint64(len(all)))
	for _, row := range all {
		b.PutBytes(sql.EncodeRow(row))
	}
	return b.Bytes(), nil
}

// CentralSQLClient is the thin client of the centralized engine.
type CentralSQLClient struct {
	c *rpc.Client
}

// DialCentralSQL connects to a CentralSQLServer.
func DialCentralSQL(addr string) (*CentralSQLClient, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &CentralSQLClient{c: c}, nil
}

// Close closes the connection.
func (c *CentralSQLClient) Close() { c.c.Close() }

// Query ships a SQL statement and returns the resulting rows.
func (c *CentralSQLClient) Query(ctx context.Context, query string, args ...sql.Value) ([][]sql.Value, error) {
	b := wire.NewBuffer(64 + len(query))
	b.PutString(query)
	b.PutBytes(sql.EncodeRow(args))
	resp, err := c.c.Call(ctx, methodExec, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	ncols, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ncols; i++ {
		if _, err := r.String(); err != nil {
			return nil, err
		}
	}
	nrows, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([][]sql.Value, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		raw, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		row, err := sql.DecodeRow(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Exec ships a statement, discarding rows.
func (c *CentralSQLClient) Exec(ctx context.Context, query string, args ...sql.Value) error {
	_, err := c.Query(ctx, query, args...)
	return err
}
