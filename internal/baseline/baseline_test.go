package baseline_test

import (
	"context"
	"errors"
	"testing"

	"yesquel/internal/baseline"
	"yesquel/internal/cluster"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/sql"
)

func TestRawKVGetSetDelete(t *testing.T) {
	cl, err := cluster.Start(3, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := baseline.NewRawKV(c)
	ctx := context.Background()

	if _, err := r.Get(ctx, "missing"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := r.Set(ctx, "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get(ctx, "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("%q %v", v, err)
	}
	if err := r.Set(ctx, "k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get(ctx, "k1"); string(v) != "v2" {
		t.Fatalf("overwrite: %q", v)
	}
	if err := r.Delete(ctx, "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, "k1"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestRawKVSpreadsAcrossServers(t *testing.T) {
	cl, err := cluster.Start(4, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := baseline.NewRawKV(c)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := r.Set(ctx, string(rune('a'+i%26))+string(rune('0'+i/26)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i, srv := range cl.Servers {
		if srv.Store().NumObjects() == 0 {
			t.Fatalf("server %d got no keys", i)
		}
	}
}

func TestCentralSQLEndToEnd(t *testing.T) {
	srv, err := baseline.NewCentralSQLServer(4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	c, err := baseline.DialCentralSQL(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Exec(ctx, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(ctx, "INSERT INTO t VALUES (?, ?)", sql.Int(1), sql.Text("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(ctx, "INSERT INTO t VALUES (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, "SELECT v FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].S != "one" || rows[1][0].S != "two" {
		t.Fatalf("rows: %+v", rows)
	}
	// Errors travel back as application errors.
	if err := c.Exec(ctx, "SELECT * FROM nonexistent"); err == nil {
		t.Fatal("error did not propagate")
	}
}

func TestCentralSQLConcurrentClients(t *testing.T) {
	srv, err := baseline.NewCentralSQLServer(4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	ctx := context.Background()

	setup, err := baseline.DialCentralSQL(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Exec(ctx, "CREATE TABLE c (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			c, err := baseline.DialCentralSQL(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				if err := c.Exec(ctx, "INSERT INTO c VALUES (?)", sql.Int(int64(w*100+i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	rows, err := setup.Query(ctx, "SELECT count(*) FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 160 {
		t.Fatalf("count = %d", rows[0][0].I)
	}
}
