package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err != ErrFrameTooLarge {
		t.Fatalf("WriteFrame oversize: got %v, want ErrFrameTooLarge", err)
	}
	// A corrupt header claiming an oversize frame must be rejected.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("ReadFrame oversize header: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Cut the frame short: reader must see an unexpected EOF, not hang
	// or return partial data.
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadFrame truncated: got %v, want ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("ReadFrame empty: got %v, want EOF", err)
	}
}

func TestBufferReaderRoundTrip(t *testing.T) {
	b := NewBuffer(64)
	b.PutUvarint(0)
	b.PutUvarint(math.MaxUint64)
	b.PutVarint(-1)
	b.PutVarint(math.MinInt64)
	b.PutUint64(0xdeadbeefcafef00d)
	b.PutUint32(0x01020304)
	b.PutByte(0x7f)
	b.PutBool(true)
	b.PutBool(false)
	b.PutFloat64(-3.25)
	b.PutBytes([]byte{1, 2, 3})
	b.PutString("yesquel")
	b.PutBytes(nil)

	r := NewReader(b.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 0 {
		t.Fatalf("Uvarint: %v %v", v, err)
	}
	if v, err := r.Uvarint(); err != nil || v != math.MaxUint64 {
		t.Fatalf("Uvarint max: %v %v", v, err)
	}
	if v, err := r.Varint(); err != nil || v != -1 {
		t.Fatalf("Varint: %v %v", v, err)
	}
	if v, err := r.Varint(); err != nil || v != math.MinInt64 {
		t.Fatalf("Varint min: %v %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("Uint64: %x %v", v, err)
	}
	if v, err := r.Uint32(); err != nil || v != 0x01020304 {
		t.Fatalf("Uint32: %x %v", v, err)
	}
	if v, err := r.Byte(); err != nil || v != 0x7f {
		t.Fatalf("Byte: %x %v", v, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("Bool true: %v %v", v, err)
	}
	if v, err := r.Bool(); err != nil || v {
		t.Fatalf("Bool false: %v %v", v, err)
	}
	if v, err := r.Float64(); err != nil || v != -3.25 {
		t.Fatalf("Float64: %v %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Bytes: %v %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "yesquel" {
		t.Fatalf("String: %q %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || len(v) != 0 {
		t.Fatalf("empty Bytes: %v %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	// Every decoding method must fail cleanly on an empty buffer.
	r := NewReader(nil)
	if _, err := r.Uvarint(); err == nil {
		t.Fatal("Uvarint on empty: want error")
	}
	if _, err := r.Uint64(); err == nil {
		t.Fatal("Uint64 on empty: want error")
	}
	if _, err := r.Byte(); err == nil {
		t.Fatal("Byte on empty: want error")
	}
	if _, err := r.Bytes(); err == nil {
		t.Fatal("Bytes on empty: want error")
	}
	// A length prefix larger than the remaining payload must error.
	b := NewBuffer(8)
	b.PutUvarint(100)
	b.PutByte('x')
	r = NewReader(b.Bytes())
	if _, err := r.Bytes(); err == nil {
		t.Fatal("Bytes with lying prefix: want error")
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(8)
	b.PutString("abc")
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.PutString("xyz")
	r := NewReader(b.Bytes())
	if v, _ := r.String(); v != "xyz" {
		t.Fatalf("after reset: %q", v)
	}
}

func TestBytesAliasCapped(t *testing.T) {
	// Reader.Bytes must return a slice with capped capacity so appends
	// by the caller cannot scribble over adjacent encoded data.
	b := NewBuffer(16)
	b.PutBytes([]byte("aa"))
	b.PutBytes([]byte("bb"))
	r := NewReader(b.Bytes())
	first, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	_ = append(first, 'Z') // must reallocate, not overwrite
	second, err := r.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != "bb" {
		t.Fatalf("append through alias corrupted next field: %q", second)
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s []byte) bool {
		b := NewBuffer(32)
		b.PutUvarint(u)
		b.PutVarint(i)
		b.PutBytes(s)
		r := NewReader(b.Bytes())
		gu, err1 := r.Uvarint()
		gi, err2 := r.Varint()
		gs, err3 := r.Bytes()
		return err1 == nil && err2 == nil && err3 == nil &&
			gu == u && gi == i && bytes.Equal(gs, s) && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, p); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
