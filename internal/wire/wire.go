// Package wire implements the low-level encoding used by Yesquel's RPC
// stack: length-prefixed frames on the network and a compact, allocation-
// conscious binary encoding for message payloads.
//
// The encoding is deliberately simple: unsigned varints for integers,
// length-prefixed byte strings, and fixed-width 64-bit values where the
// caller needs them. There is no reflection and no schema; each message
// type hand-rolls MarshalWire/UnmarshalWire using Buffer and Reader.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrameSize bounds a single frame. Frames carry one RPC request or
// response; DBT nodes are capped well below this, so any larger frame
// indicates corruption or a protocol error.
const MaxFrameSize = 64 << 20 // 64 MiB

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortBuffer   = errors.New("wire: short buffer")
)

// WriteFrame writes one length-prefixed frame to w. It performs a single
// Write call so that concurrent writers serialized by a mutex cannot
// interleave partial frames.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame from r. It returns the
// payload in a freshly allocated slice owned by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Buffer accumulates an encoded message. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded contents. The slice aliases the Buffer's
// internal storage and is valid until the next Put call.
func (b *Buffer) Bytes() []byte { return b.b }

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.b) }

// Reset truncates the buffer, retaining capacity.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// PutUvarint appends v as an unsigned varint.
func (b *Buffer) PutUvarint(v uint64) {
	b.b = binary.AppendUvarint(b.b, v)
}

// PutVarint appends v as a signed (zig-zag) varint.
func (b *Buffer) PutVarint(v int64) {
	b.b = binary.AppendVarint(b.b, v)
}

// PutUint64 appends v as a fixed-width big-endian 64-bit value.
func (b *Buffer) PutUint64(v uint64) {
	b.b = binary.BigEndian.AppendUint64(b.b, v)
}

// PutUint32 appends v as a fixed-width big-endian 32-bit value.
func (b *Buffer) PutUint32(v uint32) {
	b.b = binary.BigEndian.AppendUint32(b.b, v)
}

// PutByte appends a single byte.
func (b *Buffer) PutByte(v byte) { b.b = append(b.b, v) }

// PutBool appends a boolean as one byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.b = append(b.b, 1)
	} else {
		b.b = append(b.b, 0)
	}
}

// PutFloat64 appends v as its IEEE-754 bit pattern.
func (b *Buffer) PutFloat64(v float64) {
	b.PutUint64(math.Float64bits(v))
}

// PutBytes appends a length-prefixed byte string.
func (b *Buffer) PutBytes(v []byte) {
	b.PutUvarint(uint64(len(v)))
	b.b = append(b.b, v...)
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(v string) {
	b.PutUvarint(uint64(len(v)))
	b.b = append(b.b, v...)
}

// Reader decodes a message produced by Buffer. Decoding methods return
// an error rather than panicking on truncated input, so a malicious or
// corrupted peer cannot crash the process.
type Reader struct {
	b   []byte
	off int
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining reports the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: uvarint", ErrShortBuffer)
	}
	r.off += n
	return v, nil
}

// Varint decodes a signed (zig-zag) varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: varint", ErrShortBuffer)
	}
	r.off += n
	return v, nil
}

// Uint64 decodes a fixed-width big-endian 64-bit value.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("%w: uint64", ErrShortBuffer)
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// Uint32 decodes a fixed-width big-endian 32-bit value.
func (r *Reader) Uint32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, fmt.Errorf("%w: uint32", ErrShortBuffer)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

// Byte decodes a single byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, fmt.Errorf("%w: byte", ErrShortBuffer)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// Bool decodes a boolean.
func (r *Reader) Bool() (bool, error) {
	v, err := r.Byte()
	return v != 0, err
}

// Float64 decodes an IEEE-754 64-bit float.
func (r *Reader) Float64() (float64, error) {
	v, err := r.Uint64()
	return math.Float64frombits(v), err
}

// Bytes decodes a length-prefixed byte string. The returned slice
// aliases the Reader's underlying buffer; callers that retain it past
// the life of the frame must copy.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(r.Remaining()) < n {
		return nil, fmt.Errorf("%w: bytes of length %d", ErrShortBuffer, n)
	}
	v := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

// BytesCopy decodes a length-prefixed byte string into fresh storage.
func (r *Reader) BytesCopy() ([]byte, error) {
	v, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// String decodes a length-prefixed string.
func (r *Reader) String() (string, error) {
	v, err := r.Bytes()
	if err != nil {
		return "", err
	}
	return string(v), nil
}
