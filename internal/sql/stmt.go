package sql

import (
	"context"
	"fmt"
)

// Prepared statements. Parsing a Web application's small queries can
// rival execution cost, so sessions keep a parse cache and expose
// explicit preparation. The AST is immutable during execution, so a
// parsed statement is reusable (within its session; a PreparedStmt is
// tied to the DB that made it and shares its single-goroutine rule).

// PreparedStmt is a parsed statement bound to a session.
type PreparedStmt struct {
	db      *DB
	stmt    Stmt
	query   string
	nparams int
}

// Prepare parses query once for repeated execution.
func (db *DB) Prepare(query string) (*PreparedStmt, error) {
	stmt, nparams, err := db.parse(query)
	if err != nil {
		return nil, err
	}
	return &PreparedStmt{db: db, stmt: stmt, query: query, nparams: nparams}, nil
}

// NumParams reports the number of ? placeholders.
func (s *PreparedStmt) NumParams() int { return s.nparams }

// Query executes the statement and returns its rows.
func (s *PreparedStmt) Query(ctx context.Context, args ...Value) (*Rows, error) {
	if len(args) < s.nparams {
		return nil, fmt.Errorf("sql: statement needs %d arguments, got %d", s.nparams, len(args))
	}
	_, rows, err := s.db.runParsed(ctx, s.stmt, args)
	if rows == nil {
		rows = &Rows{}
	}
	return rows, err
}

// Exec executes the statement, discarding rows.
func (s *PreparedStmt) Exec(ctx context.Context, args ...Value) (Result, error) {
	res, _, err := s.db.runParsed(ctx, s.stmt, args)
	return res, err
}

// parseCacheCap bounds the per-session parse cache.
const parseCacheCap = 256

type parsedEntry struct {
	stmt    Stmt
	nparams int
}

// parse returns the parsed form of query, consulting the session's
// cache first.
func (db *DB) parse(query string) (Stmt, int, error) {
	if e, ok := db.parseCache[query]; ok {
		return e.stmt, e.nparams, nil
	}
	toks, err := lex(query)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, 0, err
	}
	p.accept(tokSym, ";")
	if p.cur().kind != tokEOF {
		return nil, 0, fmt.Errorf("sql: unexpected %s after statement", p.cur())
	}
	if db.parseCache == nil {
		db.parseCache = make(map[string]parsedEntry, 64)
	}
	if len(db.parseCache) >= parseCacheCap {
		// Simple wholesale eviction: statement sets in Web apps are
		// small and stable; overflowing means the caller interpolates
		// values into SQL (their bug, not our memory leak).
		db.parseCache = make(map[string]parsedEntry, 64)
	}
	db.parseCache[query] = parsedEntry{stmt: stmt, nparams: p.params}
	return stmt, p.params, nil
}
