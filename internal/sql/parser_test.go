package sql

import (
	"testing"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE users (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		score REAL,
		avatar BLOB
	);`).(CreateTable)
	if st.Name != "users" || len(st.Cols) != 4 {
		t.Fatalf("%+v", st)
	}
	if !st.Cols[0].PrimaryKey || st.Cols[0].Type != TypeInt {
		t.Fatalf("pk col: %+v", st.Cols[0])
	}
	if !st.Cols[1].NotNull || st.Cols[1].Type != TypeText {
		t.Fatalf("name col: %+v", st.Cols[1])
	}
	if st.Cols[2].Type != TypeFloat || st.Cols[3].Type != TypeBlob {
		t.Fatalf("types: %+v", st.Cols)
	}
}

func TestParseCreateTableIfNotExistsAndVarchar(t *testing.T) {
	st := mustParse(t, "CREATE TABLE IF NOT EXISTS t (name VARCHAR(255))").(CreateTable)
	if !st.IfNotExists || st.Cols[0].Type != TypeText {
		t.Fatalf("%+v", st)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE UNIQUE INDEX idx_email ON users (email)").(CreateIndex)
	if !st.Unique || st.Table != "users" || st.Cols[0] != "email" {
		t.Fatalf("%+v", st)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").(Insert)
	if st.Table != "t" || len(st.Cols) != 2 || len(st.Rows) != 2 {
		t.Fatalf("%+v", st)
	}
	if lit := st.Rows[1][1].(Lit); !lit.V.IsNull() {
		t.Fatal("NULL literal")
	}
}

func TestParseInsertParams(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (?, ?, ?)").(Insert)
	if len(st.Rows[0]) != 3 {
		t.Fatalf("%+v", st)
	}
	for i, e := range st.Rows[0] {
		if p, ok := e.(Param); !ok || p.N != i {
			t.Fatalf("param %d: %+v", i, e)
		}
	}
}

func TestParseSelectFull(t *testing.T) {
	st := mustParse(t, `SELECT u.name AS n, count(*) FROM users u
		JOIN orders o ON o.user_id = u.id
		WHERE u.age >= 18 AND o.total > 10.5
		GROUP BY u.name HAVING count(*) > 2
		ORDER BY n DESC, 2 LIMIT 10 OFFSET 5`).(Select)
	if len(st.Items) != 2 || st.Items[0].Alias != "n" {
		t.Fatalf("items: %+v", st.Items)
	}
	if st.From.Name != "users" || st.From.Alias != "u" {
		t.Fatalf("from: %+v", st.From)
	}
	if len(st.Joins) != 1 || st.Joins[0].Right.Alias != "o" {
		t.Fatalf("joins: %+v", st.Joins)
	}
	if st.Where == nil || len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatalf("%+v", st)
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order: %+v", st.OrderBy)
	}
	if st.Limit == nil || st.Offset == nil {
		t.Fatal("limit/offset")
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT *, t.* FROM t").(Select)
	if _, ok := st.Items[0].E.(Star); !ok {
		t.Fatalf("%+v", st.Items[0])
	}
	if s, ok := st.Items[1].E.(Star); !ok || s.Table != "t" {
		t.Fatalf("%+v", st.Items[1])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT 1 + 2 * 3").(Select)
	b := st.Items[0].E.(BinOp)
	if b.Op != "+" {
		t.Fatalf("top op %s", b.Op)
	}
	if r := b.R.(BinOp); r.Op != "*" {
		t.Fatalf("inner op %s", r.Op)
	}
	// AND binds tighter than OR.
	st = mustParse(t, "SELECT 1 WHERE a OR b AND c").(Select)
	w := st.Where.(BinOp)
	if w.Op != "or" {
		t.Fatalf("where top %s", w.Op)
	}
}

func TestParseWhereOperators(t *testing.T) {
	for _, src := range []string{
		"SELECT 1 FROM t WHERE a = 1",
		"SELECT 1 FROM t WHERE a != 1",
		"SELECT 1 FROM t WHERE a <> 1",
		"SELECT 1 FROM t WHERE a < 1 AND b <= 2 AND c > 3 AND d >= 4",
		"SELECT 1 FROM t WHERE a IS NULL",
		"SELECT 1 FROM t WHERE a IS NOT NULL",
		"SELECT 1 FROM t WHERE a IN (1, 2, 3)",
		"SELECT 1 FROM t WHERE a NOT IN (1, 2)",
		"SELECT 1 FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT 1 FROM t WHERE name LIKE 'a%'",
		"SELECT 1 FROM t WHERE NOT (a = 1)",
		"SELECT 1 FROM t WHERE a = -1",
		"SELECT 1 FROM t WHERE s = 'it''s'",
		"SELECT 1 FROM t WHERE b = x'deadbeef'",
	} {
		mustParse(t, src)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").(Update)
	if len(up.Set) != 2 || up.Set[0].Col != "a" || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	del := mustParse(t, "DELETE FROM t").(Delete)
	if del.Table != "t" || del.Where != nil {
		t.Fatalf("%+v", del)
	}
}

func TestParseTransactions(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(Begin); !ok {
		t.Fatal("begin")
	}
	if _, ok := mustParse(t, "BEGIN TRANSACTION").(Begin); !ok {
		t.Fatal("begin transaction")
	}
	if _, ok := mustParse(t, "COMMIT").(Commit); !ok {
		t.Fatal("commit")
	}
	if _, ok := mustParse(t, "ROLLBACK").(Rollback); !ok {
		t.Fatal("rollback")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT 1 FROM",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a WIBBLE)",
		"INSERT INTO t VALUES",
		"INSERT t VALUES (1)",
		"SELECT 1 WHERE 'unterminated",
		"SELECT 1; SELECT 2",
		"UPDATE t SET",
		"SELECT * FROM t WHERE a = @",
		"SELECT x'abc'", // odd hex
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "select 1 from T where A = 1 order by B desc limit 1")
	// Identifiers are lowercased: T and t refer to the same table.
	st := mustParse(t, "SELECT 1 FROM MyTable").(Select)
	if st.From.Name != "mytable" {
		t.Fatalf("identifier not normalized: %q", st.From.Name)
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, `SELECT 1 -- trailing comment
		FROM t -- another`).(Select)
	if st.From == nil {
		t.Fatal("comment swallowed FROM")
	}
}
