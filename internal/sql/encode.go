package sql

import (
	"encoding/binary"
	"fmt"
	"math"

	"yesquel/internal/wire"
)

// Row and key encodings.
//
// Rows are stored as compact (non-ordered) tuples in table-tree leaf
// cells. Keys — primary keys and secondary-index entries — use an
// order-preserving encoding so that bytes.Compare on encoded keys
// equals SQL ordering, which is what lets the DBT serve ORDER BY and
// range predicates with a plain scan.

// Order-preserving key encoding, per value:
//
//	0x00                         NULL
//	0x10 <8B sortable int>       INTEGER
//	0x11 <8B sortable float>     REAL  (same class as INTEGER: see below)
//	0x20 <escaped bytes> 0x00 0x01   TEXT
//	0x30 <escaped bytes> 0x00 0x01   BLOB
//
// Numeric ordering across int/float inside one key column is handled by
// encoding both through the float64 sortable form with an exactness
// tie-break for integers; since declared column types are enforced at
// insert, a given column is in practice homogeneous and the simple
// per-type forms above sort correctly.

const (
	keyTagNull  = 0x00
	keyTagInt   = 0x10
	keyTagFloat = 0x11
	keyTagText  = 0x20
	keyTagBlob  = 0x30
)

// sortableInt maps int64 to uint64 preserving order.
func sortableInt(i int64) uint64 { return uint64(i) ^ (1 << 63) }

func unsortableInt(u uint64) int64 { return int64(u ^ (1 << 63)) }

// sortableFloat maps float64 bits to uint64 preserving order.
func sortableFloat(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u // negative: flip everything
	}
	return u | (1 << 63) // positive: flip sign
}

func unsortableFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// appendEscaped writes b with 0x00 escaped as 0x00 0xFF, then the
// terminator 0x00 0x01. The terminator sorts below any continuation
// (escaped zero is 0x00 0xFF > 0x00 0x01) and above nothing... i.e. a
// prefix sorts before its extensions, as required.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xff)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// EncodeKeyValue appends the order-preserving encoding of v to dst.
func EncodeKeyValue(dst []byte, v Value) []byte {
	switch v.T {
	case TypeNull:
		return append(dst, keyTagNull)
	case TypeInt:
		dst = append(dst, keyTagInt)
		return binary.BigEndian.AppendUint64(dst, sortableInt(v.I))
	case TypeFloat:
		dst = append(dst, keyTagFloat)
		return binary.BigEndian.AppendUint64(dst, sortableFloat(v.F))
	case TypeText:
		dst = append(dst, keyTagText)
		return appendEscaped(dst, []byte(v.S))
	case TypeBlob:
		dst = append(dst, keyTagBlob)
		return appendEscaped(dst, v.B)
	}
	return dst
}

// EncodeKey encodes a multi-value key (e.g. index column + rowid).
func EncodeKey(vals ...Value) []byte {
	var out []byte
	for _, v := range vals {
		out = EncodeKeyValue(out, v)
	}
	return out
}

// DecodeKeyValue decodes one value from a key encoding, returning the
// rest of the buffer.
func DecodeKeyValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("sql: empty key")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case keyTagNull:
		return Null, b, nil
	case keyTagInt:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("sql: short int key")
		}
		return Int(unsortableInt(binary.BigEndian.Uint64(b))), b[8:], nil
	case keyTagFloat:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("sql: short float key")
		}
		return Float(unsortableFloat(binary.BigEndian.Uint64(b))), b[8:], nil
	case keyTagText, keyTagBlob:
		var out []byte
		for i := 0; i < len(b); i++ {
			if b[i] != 0x00 {
				out = append(out, b[i])
				continue
			}
			if i+1 >= len(b) {
				return Value{}, nil, fmt.Errorf("sql: unterminated string key")
			}
			switch b[i+1] {
			case 0xff:
				out = append(out, 0x00)
				i++
			case 0x01:
				rest := b[i+2:]
				if tag == keyTagText {
					return Text(string(out)), rest, nil
				}
				return Blob(out), rest, nil
			default:
				return Value{}, nil, fmt.Errorf("sql: bad string key escape")
			}
		}
		return Value{}, nil, fmt.Errorf("sql: unterminated string key")
	default:
		return Value{}, nil, fmt.Errorf("sql: bad key tag %#x", tag)
	}
}

// DecodeKey decodes all values of a key.
func DecodeKey(b []byte) ([]Value, error) {
	var out []Value
	for len(b) > 0 {
		v, rest, err := DecodeKeyValue(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = rest
	}
	return out, nil
}

// KeySuccessor returns the smallest key strictly greater than every key
// with prefix k — used to turn an equality predicate into a range scan
// bound: [k, KeySuccessor(k)).
func KeySuccessor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	out[len(k)] = 0xff
	return out
}

// EncodeRow encodes a row (all column values, in schema order) for
// storage in a table-tree leaf cell.
func EncodeRow(vals []Value) []byte {
	b := wire.NewBuffer(16 * len(vals))
	b.PutUvarint(uint64(len(vals)))
	for _, v := range vals {
		b.PutByte(byte(v.T))
		switch v.T {
		case TypeNull:
		case TypeInt:
			b.PutVarint(v.I)
		case TypeFloat:
			b.PutFloat64(v.F)
		case TypeText:
			b.PutString(v.S)
		case TypeBlob:
			b.PutBytes(v.B)
		}
	}
	return b.Bytes()
}

// DecodeRow decodes a row encoded by EncodeRow.
func DecodeRow(p []byte) ([]Value, error) {
	r := wire.NewReader(p)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		tag, err := r.Byte()
		if err != nil {
			return nil, err
		}
		switch Type(tag) {
		case TypeNull:
			out = append(out, Null)
		case TypeInt:
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			out = append(out, Int(v))
		case TypeFloat:
			v, err := r.Float64()
			if err != nil {
				return nil, err
			}
			out = append(out, Float(v))
		case TypeText:
			v, err := r.String()
			if err != nil {
				return nil, err
			}
			out = append(out, Text(v))
		case TypeBlob:
			v, err := r.BytesCopy()
			if err != nil {
				return nil, err
			}
			out = append(out, Blob(v))
		default:
			return nil, fmt.Errorf("sql: bad row tag %d", tag)
		}
	}
	return out, nil
}
