package sql

// Abstract syntax for the supported dialect. Statements and expressions
// are plain structs; the planner consumes them directly.

// Stmt is any SQL statement.
type Stmt interface{ stmt() }

// Expr is any expression.
type Expr interface{ expr() }

// --- expressions ---

// Lit is a literal value.
type Lit struct{ V Value }

// Param is a ? placeholder, numbered left to right from 0.
type Param struct{ N int }

// ColRef names a column, optionally qualified by table (or alias).
type ColRef struct {
	Table string // "" if unqualified
	Col   string
}

// BinOp is a binary operation.
type BinOp struct {
	Op   string // "+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">=", "and", "or", "like", "||"
	L, R Expr
}

// UnOp is a unary operation: "-", "not".
type UnOp struct {
	Op string
	E  Expr
}

// IsNull tests E IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

// InList is E IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

// Between is E BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

// Call is a function call: scalar (length, abs, upper, lower) or
// aggregate (count, sum, avg, min, max).
type Call struct {
	Fn       string
	Args     []Expr
	Star     bool // count(*)
	Distinct bool
}

// Star is the bare * projection.
type Star struct{ Table string }

func (Lit) expr()     {}
func (Param) expr()   {}
func (ColRef) expr()  {}
func (BinOp) expr()   {}
func (UnOp) expr()    {}
func (IsNull) expr()  {}
func (InList) expr()  {}
func (Between) expr() {}
func (Call) expr()    {}
func (Star) expr()    {}

// --- statements ---

// ColDef is one column in CREATE TABLE.
type ColDef struct {
	Name       string
	Type       Type
	PrimaryKey bool
	NotNull    bool
}

// CreateTable is CREATE TABLE.
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []ColDef
}

// DropTable is DROP TABLE.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateIndex is CREATE [UNIQUE] INDEX.
type CreateIndex struct {
	Name        string
	Table       string
	Cols        []string
	Unique      bool
	IfNotExists bool
}

// DropIndex is DROP INDEX.
type DropIndex struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO.
type Insert struct {
	Table string
	Cols  []string // empty = all columns in schema order
	Rows  [][]Expr
}

// SelectItem is one projection item.
type SelectItem struct {
	E     Expr
	Alias string
}

// TableRef is one table in FROM, with optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Join is an inner join with an ON condition.
type Join struct {
	Right TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// Select is SELECT.
type Select struct {
	Items    []SelectItem
	From     *TableRef // nil for SELECT 1+1
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = none
	Offset   Expr
	Distinct bool
}

// Update is UPDATE ... SET.
type Update struct {
	Table string
	Set   []struct {
		Col string
		E   Expr
	}
	Where Expr
}

// Delete is DELETE FROM.
type Delete struct {
	Table string
	Where Expr
}

// Explain wraps a statement to report its access plan instead of
// executing it.
type Explain struct{ Stmt Stmt }

func (Explain) stmt() {}

// Begin/Commit/Rollback control explicit transactions.
type Begin struct{}
type Commit struct{}
type Rollback struct{}

func (CreateTable) stmt() {}
func (DropTable) stmt()   {}
func (CreateIndex) stmt() {}
func (DropIndex) stmt()   {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}
func (Begin) stmt()       {}
func (Commit) stmt()      {}
func (Rollback) stmt()    {}
