package sql_test

import (
	"strings"
	"testing"
)

func TestExplainAccessPaths(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	mustExec(t, db, "CREATE INDEX idx_city ON users (city)")
	mustExec(t, db, "CREATE TABLE orders (oid INTEGER PRIMARY KEY, user_id INTEGER)")

	cases := []struct {
		q    string
		want []string // substrings expected in order-insensitive fashion
	}{
		{"EXPLAIN SELECT * FROM users WHERE id = 1",
			[]string{"PRIMARY KEY lookup on users"}},
		{"EXPLAIN SELECT * FROM users WHERE id > 1 AND id < 10",
			[]string{"PRIMARY KEY range scan on users"}},
		{"EXPLAIN SELECT * FROM users WHERE city = 'paris'",
			[]string{"INDEX lookup on users via idx_city"}},
		{"EXPLAIN SELECT * FROM users WHERE city >= 'a'",
			[]string{"INDEX range scan on users via idx_city"}},
		{"EXPLAIN SELECT * FROM users WHERE name = 'bob'",
			[]string{"FULL SCAN of users"}},
		// Left-deep join in FROM order: outer users (no usable
		// predicate at depth 0), inner orders driven by its PK.
		{"EXPLAIN SELECT u.name FROM users u JOIN orders o ON o.user_id = u.id WHERE o.oid = 5",
			[]string{"FULL SCAN of users", "NESTED LOOP JOIN: PRIMARY KEY lookup on orders"}},
		// With the lookup table first, the inner side is driven by the
		// join key through the outer binding.
		{"EXPLAIN SELECT u.name FROM orders o JOIN users u ON u.id = o.user_id",
			[]string{"FULL SCAN of orders", "NESTED LOOP JOIN: PRIMARY KEY lookup on users"}},
		{"EXPLAIN SELECT city, count(*) FROM users GROUP BY city ORDER BY city LIMIT 3",
			[]string{"FULL SCAN of users", "HASH AGGREGATE", "SORT", "LIMIT"}},
		{"EXPLAIN UPDATE users SET age = 1 WHERE id = 2",
			[]string{"UPDATE via PRIMARY KEY lookup", "secondary index"}},
		{"EXPLAIN DELETE FROM users WHERE city = 'paris'",
			[]string{"DELETE via INDEX lookup"}},
		{"EXPLAIN SELECT 1",
			[]string{"CONSTANT ROW"}},
	}
	for _, tc := range cases {
		rows := mustQuery(t, db, tc.q)
		var plan strings.Builder
		for _, r := range rows.All() {
			plan.WriteString(r[0].S)
			plan.WriteString("\n")
		}
		for _, want := range tc.want {
			if !strings.Contains(plan.String(), want) {
				t.Errorf("%s:\nplan %q\nmissing %q", tc.q, plan.String(), want)
			}
		}
	}
}

func TestExplainRejectsDDL(t *testing.T) {
	db := newDB(t, 1)
	if _, err := db.Query(t.Context(), "EXPLAIN CREATE TABLE t (id INTEGER PRIMARY KEY)"); err == nil {
		t.Fatal("EXPLAIN of DDL should fail")
	}
}
