package sql_test

import (
	"testing"

	"yesquel/internal/sql"
)

// The ORDER-BY-primary-key pushdown must be invisible except for speed:
// results identical to the sorted path, and early LIMIT termination
// correct.
func TestOrderByPKPushdownCorrect(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "CREATE INDEX p_v ON p (v)")
	// Insert out of order.
	for _, id := range []int64{50, 3, 99, 1, 42, 7, 60, 2} {
		mustExec(t, db, "INSERT INTO p VALUES (?, ?)", sql.Int(id), sql.Int(id%5))
	}
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT id FROM p ORDER BY id", "1\n2\n3\n7\n42\n50\n60\n99\n"},
		{"SELECT id FROM p ORDER BY id LIMIT 3", "1\n2\n3\n"},
		{"SELECT id FROM p ORDER BY id LIMIT 2 OFFSET 2", "3\n7\n"},
		{"SELECT id FROM p WHERE id > 5 ORDER BY id LIMIT 2", "7\n42\n"},
		{"SELECT id FROM p WHERE id BETWEEN 3 AND 50 ORDER BY id", "3\n7\n42\n50\n"},
		// Index-equality access still delivers PK order within the value.
		{"SELECT id FROM p WHERE v = 2 ORDER BY id", "2\n7\n42\n"},
		// DESC must NOT be pushed down (sorted path).
		{"SELECT id FROM p ORDER BY id DESC LIMIT 2", "99\n60\n"},
		// Index range access must NOT skip the sort (index order != pk order).
		{"SELECT id FROM p WHERE v >= 0 ORDER BY id LIMIT 3", "1\n2\n3\n"},
		// Alias-qualified column.
		{"SELECT t.id FROM p t ORDER BY t.id LIMIT 1", "1\n"},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

// TestOrderByPKPushdownStopsEarly verifies the scan actually terminates
// early: a LIMIT 1 ordered by PK on a big table must read far fewer
// tree nodes than a full materialize-and-sort.
func TestOrderByPKPushdownStopsEarly(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE big (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "BEGIN")
	for i := 0; i < 400; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", sql.Int(int64(i)), sql.Int(int64(i)))
	}
	mustExec(t, db, "COMMIT")

	table, err := db.Catalog().GetTable(t.Context(), db.Client().Begin(), "big")
	if err != nil {
		t.Fatal(err)
	}
	statsBefore := table.Tree.Stats()
	for i := 0; i < 10; i++ {
		if got := rowsToString(mustQuery(t, db, "SELECT id FROM big ORDER BY id LIMIT 1")); got != "0\n" {
			t.Fatalf("%q", got)
		}
	}
	statsAfter := table.Tree.Stats()
	reads := statsAfter.NodeReads - statsBefore.NodeReads
	// With MaxCells=16 the table spans ~25+ leaves; ten LIMIT-1 queries
	// must not read anywhere near 10 full scans' worth of nodes.
	if reads > 30 {
		t.Fatalf("LIMIT 1 ordered by pk read %d nodes over 10 queries; early termination broken", reads)
	}
}
