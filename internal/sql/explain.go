package sql

import (
	"context"
	"fmt"
	"strings"

	"yesquel/internal/kv/kvclient"
)

// EXPLAIN: report the access paths the planner would use, one line per
// table in join order, without executing the statement.

func (p accessPath) describe(table *Table) string {
	s := table.Schema
	switch p.kind {
	case pathPKEq:
		return fmt.Sprintf("PRIMARY KEY lookup on %s (%s = ...)", s.Name, s.Cols[s.PKCol].Name)
	case pathPKRange:
		return fmt.Sprintf("PRIMARY KEY range scan on %s (%s)", s.Name, describeBounds(s.Cols[s.PKCol].Name, p))
	case pathIdxEq:
		is := s.Indexes[p.idx]
		return fmt.Sprintf("INDEX lookup on %s via %s (%s = ...)", s.Name, is.Name, is.Col)
	case pathIdxRange:
		is := s.Indexes[p.idx]
		return fmt.Sprintf("INDEX range scan on %s via %s (%s)", s.Name, is.Name, describeBounds(is.Col, p))
	default:
		return fmt.Sprintf("FULL SCAN of %s", s.Name)
	}
}

func describeBounds(col string, p accessPath) string {
	var parts []string
	if p.lo != nil {
		op := ">"
		if p.lo.incl {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("%s %s ...", col, op))
	}
	if p.hi != nil {
		op := "<"
		if p.hi.incl {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s ...", col, op))
	}
	return strings.Join(parts, " AND ")
}

func (db *DB) execExplain(ctx context.Context, tx *kvclient.Tx, st Explain) (*Rows, error) {
	rows := &Rows{Columns: []string{"plan"}}
	addLine := func(depth int, line string) {
		rows.rows = append(rows.rows, []Value{Text(strings.Repeat("  ", depth) + line)})
	}
	switch s := st.Stmt.(type) {
	case Select:
		if s.From == nil {
			addLine(0, "CONSTANT ROW (no FROM)")
			break
		}
		refs := []TableRef{*s.From}
		for _, j := range s.Joins {
			refs = append(refs, j.Right)
		}
		var conj []Expr
		conj = conjuncts(s.Where, conj)
		for _, j := range s.Joins {
			conj = conjuncts(j.On, conj)
		}
		outer := make(map[string]bool)
		for depth, r := range refs {
			alias := r.Alias
			if alias == "" {
				alias = r.Name
			}
			table, err := db.cat.GetTable(ctx, tx, r.Name)
			if err != nil {
				return nil, err
			}
			path := planAccess(table, alias, conj, outer)
			prefix := ""
			if depth > 0 {
				prefix = "NESTED LOOP JOIN: "
			}
			addLine(depth, prefix+path.describe(table))
			outer[alias] = true
		}
		agg := len(s.GroupBy) > 0 || s.Having != nil
		for _, it := range s.Items {
			if hasAggregate(it.E) {
				agg = true
			}
		}
		if agg {
			addLine(0, fmt.Sprintf("HASH AGGREGATE (%d group-by keys)", len(s.GroupBy)))
		}
		if s.Distinct {
			addLine(0, "DISTINCT")
		}
		if len(s.OrderBy) > 0 {
			addLine(0, fmt.Sprintf("SORT (%d keys)", len(s.OrderBy)))
		}
		if s.Limit != nil {
			addLine(0, "LIMIT")
		}
	case Update:
		table, err := db.cat.GetTable(ctx, tx, s.Table)
		if err != nil {
			return nil, err
		}
		path := planAccess(table, s.Table, conjuncts(s.Where, nil), nil)
		addLine(0, "UPDATE via "+path.describe(table))
		if len(table.Schema.Indexes) > 0 {
			addLine(1, fmt.Sprintf("maintains %d secondary index(es)", len(table.Schema.Indexes)))
		}
	case Delete:
		table, err := db.cat.GetTable(ctx, tx, s.Table)
		if err != nil {
			return nil, err
		}
		path := planAccess(table, s.Table, conjuncts(s.Where, nil), nil)
		addLine(0, "DELETE via "+path.describe(table))
		if len(table.Schema.Indexes) > 0 {
			addLine(1, fmt.Sprintf("maintains %d secondary index(es)", len(table.Schema.Indexes)))
		}
	default:
		return nil, fmt.Errorf("sql: cannot explain %T", st.Stmt)
	}
	return rows, nil
}
