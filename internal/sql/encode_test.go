package sql

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyEncodingOrderInts(t *testing.T) {
	vals := []int64{math.MinInt64, -1000000, -1, 0, 1, 42, 1000000, math.MaxInt64}
	var keys [][]byte
	for _, v := range vals {
		keys = append(keys, EncodeKey(Int(v)))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("int key order broken between %d and %d", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingOrderFloats(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1.5, -0.0, 0.0, 1e-300, 2.5, 1e300, math.Inf(1)}
	var keys [][]byte
	for _, v := range vals {
		keys = append(keys, EncodeKey(Float(v)))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("float key order broken between %g and %g", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingOrderStrings(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "aa", "ab", "b"}
	var keys [][]byte
	for _, v := range vals {
		keys = append(keys, EncodeKey(Text(v)))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("string key order broken between %q and %q", vals[i-1], vals[i])
		}
	}
}

func TestKeyEncodingNullSortsFirst(t *testing.T) {
	n := EncodeKey(Null)
	for _, v := range []Value{Int(math.MinInt64), Float(math.Inf(-1)), Text(""), Blob(nil)} {
		if bytes.Compare(n, EncodeKey(v)) >= 0 {
			t.Fatalf("NULL does not sort before %v", v)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	vals := []Value{
		Null, Int(-5), Int(0), Int(math.MaxInt64), Float(-2.5), Float(0),
		Text(""), Text("héllo"), Text("a\x00b"), Blob([]byte{0, 1, 0xff, 0}),
	}
	enc := EncodeKey(vals...)
	got, err := DecodeKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i].T != vals[i].T || Compare(got[i], vals[i]) != 0 {
			t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestQuickKeyOrderMatchesValueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randVal := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Int(rng.Int63() - rng.Int63())
		case 1:
			return Float((rng.Float64() - 0.5) * 1e10)
		case 2:
			n := rng.Intn(8)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(4)) // lots of zero bytes
			}
			return Text(string(b))
		default:
			n := rng.Intn(8)
			b := make([]byte, n)
			rng.Read(b)
			return Blob(b)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randVal(), randVal()
		// Only compare within the same type class (mixed-type columns
		// do not occur with enforced column affinity).
		if typeRank(a.T) != typeRank(b.T) || a.T != b.T {
			continue
		}
		cmpVal := Compare(a, b)
		cmpKey := bytes.Compare(EncodeKey(a), EncodeKey(b))
		if (cmpVal < 0) != (cmpKey < 0) || (cmpVal == 0) != (cmpKey == 0) {
			t.Fatalf("order mismatch: %v vs %v: val %d key %d", a, b, cmpVal, cmpKey)
		}
	}
}

func TestKeySuccessorCoversExtensions(t *testing.T) {
	base := EncodeKey(Text("user"))
	succ := KeySuccessor(base)
	extended := EncodeKey(Text("user"), Int(42))
	if !(bytes.Compare(base, extended) <= 0 && bytes.Compare(extended, succ) < 0) {
		t.Fatal("extension of key not inside [key, successor)")
	}
	other := EncodeKey(Text("user2"))
	if bytes.Compare(other, succ) < 0 {
		t.Fatal("different key inside successor range")
	}
}

func TestRowRoundTrip(t *testing.T) {
	rows := [][]Value{
		nil,
		{Null},
		{Int(1), Float(2.5), Text("x"), Blob([]byte{9}), Null},
	}
	for _, row := range rows {
		got, err := DecodeRow(EncodeRow(row))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(row) {
			t.Fatalf("row length %d want %d", len(got), len(row))
		}
		for i := range row {
			if got[i].T != row[i].T || Compare(got[i], row[i]) != 0 {
				t.Fatalf("col %d: %v want %v", i, got[i], row[i])
			}
		}
	}
}

func TestQuickRowRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b []byte, hasNull bool) bool {
		row := []Value{Int(i), Float(fl), Text(s), Blob(b)}
		if hasNull {
			row = append(row, Null)
		}
		got, err := DecodeRow(EncodeRow(row))
		if err != nil || len(got) != len(row) {
			return false
		}
		for j := range row {
			if got[j].T != row[j].T {
				return false
			}
			// NaN compares unequal to itself; compare bit patterns.
			if row[j].T == TypeFloat {
				if math.Float64bits(got[j].F) != math.Float64bits(row[j].F) {
					return false
				}
				continue
			}
			if Compare(got[j], row[j]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortedKeysSortValues(t *testing.T) {
	// Encoding then byte-sorting a shuffled set of ints must match the
	// numeric sort.
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(Int(v))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := range vals {
		got, err := DecodeKey(keys[i])
		if err != nil || len(got) != 1 {
			t.Fatal(err)
		}
		if got[0].I != vals[i] {
			t.Fatalf("position %d: key-sorted %d, value-sorted %d", i, got[0].I, vals[i])
		}
	}
}
