package sql

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokBlob // x'ab' hex literal
	tokSym  // punctuation and operators
	tokParam
)

type token struct {
	kind tokKind
	text string // identifier (lowercased for keywords), symbol, or literal text
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "insert": true, "into": true,
	"values": true, "update": true, "set": true, "delete": true, "create": true,
	"drop": true, "table": true, "index": true, "unique": true, "on": true,
	"primary": true, "key": true, "not": true, "null": true, "and": true,
	"or": true, "order": true, "by": true, "asc": true, "desc": true,
	"limit": true, "offset": true, "group": true, "having": true, "as": true,
	"join": true, "inner": true, "left": true, "begin": true, "commit": true,
	"rollback": true, "integer": true, "int": true, "real": true, "float": true,
	"text": true, "blob": true, "varchar": true, "like": true, "in": true,
	"is": true, "between": true, "distinct": true, "if": true, "exists": true,
	"default": true, "count": true, "sum": true, "avg": true, "min": true,
	"max": true, "transaction": true, "explain": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns a descriptive error with the offending
// position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case (c == 'x' || c == 'X') && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'':
			if err := l.lexBlob(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20) >= 'a' && (c|0x20) <= 'z' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

func (l *lexer) lexNumber() error {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
		} else if c == '.' && !isFloat {
			isFloat = true
			l.pos++
		} else if (c == 'e' || c == 'E') && l.pos > start {
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		} else {
			break
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // '' escape
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

func (l *lexer) lexBlob() error {
	start := l.pos
	l.pos += 2 // x'
	hexStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sql: unterminated blob literal at %d", start)
	}
	hex := l.src[hexStart:l.pos]
	l.pos++
	if len(hex)%2 != 0 {
		return fmt.Errorf("sql: odd-length blob literal at %d", start)
	}
	l.toks = append(l.toks, token{kind: tokBlob, text: hex, pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	lower := strings.ToLower(text)
	if keywords[lower] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: lower, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: lower, pos: start})
	}
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	idStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sql: unterminated quoted identifier at %d", start)
	}
	text := l.src[idStart:l.pos]
	l.pos++
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(text), pos: start})
	return nil
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokSym, text: two, pos: start})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSym, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, start)
}
