package sql_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"yesquel/internal/cluster"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/sql"
)

// newDB starts a cluster and returns a connected session.
func newDB(t *testing.T, servers int) *sql.DB {
	t.Helper()
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	db := sql.NewDB(c, dbt.Config{MaxCells: 16})
	t.Cleanup(db.Close)
	return db
}

func mustExec(t *testing.T, db *sql.DB, q string, args ...sql.Value) sql.Result {
	t.Helper()
	res, err := db.Exec(context.Background(), q, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func mustQuery(t *testing.T, db *sql.DB, q string, args ...sql.Value) *sql.Rows {
	t.Helper()
	rows, err := db.Query(context.Background(), q, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return rows
}

// rowsToString renders rows compactly for comparison.
func rowsToString(r *sql.Rows) string {
	var sb strings.Builder
	for _, row := range r.All() {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		sb.WriteString(strings.Join(parts, "|"))
		sb.WriteString("\n")
	}
	return sb.String()
}

func setupUsers(t *testing.T, db *sql.DB) {
	mustExec(t, db, `CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER, city TEXT)`)
	for i, u := range []struct {
		name string
		age  int
		city string
	}{
		{"alice", 30, "paris"},
		{"bob", 25, "london"},
		{"carol", 35, "paris"},
		{"dave", 25, "berlin"},
		{"erin", 40, "london"},
	} {
		mustExec(t, db, "INSERT INTO users (id, name, age, city) VALUES (?, ?, ?, ?)",
			sql.Int(int64(i+1)), sql.Text(u.name), sql.Int(int64(u.age)), sql.Text(u.city))
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	rows := mustQuery(t, db, "SELECT id, name FROM users WHERE id = 3")
	if got := rowsToString(rows); got != "3|carol\n" {
		t.Fatalf("got %q", got)
	}
}

func TestSelectStarAndColumnNames(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	rows := mustQuery(t, db, "SELECT * FROM users WHERE name = 'bob'")
	if len(rows.Columns) != 4 || rows.Columns[0] != "id" || rows.Columns[3] != "city" {
		t.Fatalf("columns: %v", rows.Columns)
	}
	if got := rowsToString(rows); got != "2|bob|25|london\n" {
		t.Fatalf("got %q", got)
	}
}

func TestWherePredicates(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT name FROM users WHERE age > 30 ORDER BY name", "carol\nerin\n"},
		{"SELECT name FROM users WHERE age >= 30 AND city = 'paris' ORDER BY name", "alice\ncarol\n"},
		{"SELECT name FROM users WHERE age = 25 OR age = 40 ORDER BY name", "bob\ndave\nerin\n"},
		{"SELECT name FROM users WHERE city IN ('paris', 'berlin') ORDER BY name", "alice\ncarol\ndave\n"},
		{"SELECT name FROM users WHERE age BETWEEN 25 AND 30 ORDER BY name", "alice\nbob\ndave\n"},
		{"SELECT name FROM users WHERE name LIKE 'c%'", "carol\n"},
		{"SELECT name FROM users WHERE name LIKE '%a%e%' ORDER BY name", "alice\ndave\n"},
		{"SELECT name FROM users WHERE NOT (city = 'paris') ORDER BY name", "bob\ndave\nerin\n"},
		{"SELECT name FROM users WHERE id % 2 = 0 ORDER BY name", "bob\ndave\n"},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT name FROM users ORDER BY age, name", "bob\ndave\nalice\ncarol\nerin\n"},
		{"SELECT name FROM users ORDER BY age DESC, name DESC", "erin\ncarol\nalice\ndave\nbob\n"},
		{"SELECT name FROM users ORDER BY name LIMIT 2", "alice\nbob\n"},
		{"SELECT name FROM users ORDER BY name LIMIT 2 OFFSET 3", "dave\nerin\n"},
		{"SELECT name FROM users ORDER BY name LIMIT 0", ""},
		{"SELECT name FROM users ORDER BY 1 DESC LIMIT 1", "erin\n"},
		{"SELECT name AS n FROM users ORDER BY n LIMIT 1", "alice\n"},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT count(*) FROM users", "5\n"},
		{"SELECT count(*) FROM users WHERE age < 30", "2\n"},
		{"SELECT sum(age), min(age), max(age) FROM users", "155|25|40\n"},
		{"SELECT avg(age) FROM users", "31\n"},
		{"SELECT count(*) FROM users WHERE age > 100", "0\n"},
		{"SELECT sum(age) FROM users WHERE age > 100", "NULL\n"},
		{"SELECT city, count(*) FROM users GROUP BY city ORDER BY city", "berlin|1\nlondon|2\nparis|2\n"},
		{"SELECT city, sum(age) FROM users GROUP BY city HAVING sum(age) > 60 ORDER BY city", "london|65\nparis|65\n"},
		{"SELECT count(distinct city) FROM users", "3\n"},
		{"SELECT city, count(*) AS c FROM users GROUP BY city ORDER BY c DESC, city LIMIT 2", "london|2\nparis|2\n"},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestJoin(t *testing.T) {
	db := newDB(t, 2)
	setupUsers(t, db)
	mustExec(t, db, "CREATE TABLE orders (oid INTEGER PRIMARY KEY, user_id INTEGER, total REAL)")
	orders := []struct {
		oid, uid int64
		total    float64
	}{
		{1, 1, 10.5}, {2, 1, 20.0}, {3, 2, 5.0}, {4, 3, 7.5}, {5, 99, 1.0},
	}
	for _, o := range orders {
		mustExec(t, db, "INSERT INTO orders VALUES (?, ?, ?)", sql.Int(o.oid), sql.Int(o.uid), sql.Float(o.total))
	}
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id = u.id ORDER BY o.oid",
			"alice|10.5\nalice|20\nbob|5\ncarol|7.5\n"},
		{"SELECT u.name, count(*), sum(o.total) FROM users u JOIN orders o ON o.user_id = u.id GROUP BY u.name ORDER BY u.name",
			"alice|2|30.5\nbob|1|5\ncarol|1|7.5\n"},
		{"SELECT u.name FROM users u JOIN orders o ON o.user_id = u.id WHERE o.total > 8 ORDER BY o.oid",
			"alice\nalice\n"},
		// Self-join through aliases.
		{"SELECT a.name, b.name FROM users a JOIN users b ON a.age = b.age AND a.id < b.id",
			"bob|dave\n"},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	res := mustExec(t, db, "UPDATE users SET age = age + 1 WHERE city = 'paris'")
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT age FROM users WHERE name = 'alice'")); got != "31\n" {
		t.Fatalf("after update: %q", got)
	}
	res = mustExec(t, db, "DELETE FROM users WHERE age = 25")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users")); got != "3\n" {
		t.Fatalf("after delete: %q", got)
	}
}

func TestUpdatePrimaryKey(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	mustExec(t, db, "UPDATE users SET id = 100 WHERE name = 'bob'")
	if got := rowsToString(mustQuery(t, db, "SELECT id FROM users WHERE name = 'bob'")); got != "100\n" {
		t.Fatalf("pk update: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users")); got != "5\n" {
		t.Fatalf("row count changed: %q", got)
	}
	// PK collision must fail.
	if _, err := db.Exec(context.Background(), "UPDATE users SET id = 1 WHERE name = 'carol'"); err == nil {
		t.Fatal("pk collision not detected")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	_, err := db.Exec(context.Background(), "INSERT INTO users (id, name) VALUES (1, 'dup')")
	if err == nil || !strings.Contains(err.Error(), "UNIQUE") {
		t.Fatalf("duplicate pk: %v", err)
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, req TEXT NOT NULL)")
	if _, err := db.Exec(context.Background(), "INSERT INTO t (id) VALUES (1)"); err == nil {
		t.Fatal("NOT NULL not enforced")
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES (1, NULL)"); err == nil {
		t.Fatal("explicit NULL not rejected")
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := newDB(t, 2)
	setupUsers(t, db)
	mustExec(t, db, "CREATE INDEX idx_city ON users (city)")
	// Same results through the index path.
	if got := rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE city = 'paris' ORDER BY name")); got != "alice\ncarol\n" {
		t.Fatalf("index lookup: %q", got)
	}
	// Index maintained by INSERT / UPDATE / DELETE.
	mustExec(t, db, "INSERT INTO users VALUES (10, 'zoe', 22, 'paris')")
	mustExec(t, db, "UPDATE users SET city = 'rome' WHERE name = 'alice'")
	mustExec(t, db, "DELETE FROM users WHERE name = 'carol'")
	if got := rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE city = 'paris' ORDER BY name")); got != "zoe\n" {
		t.Fatalf("index after DML: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE city = 'rome'")); got != "alice\n" {
		t.Fatalf("index after update: %q", got)
	}
}

func TestUniqueIndex(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, email TEXT)")
	mustExec(t, db, "CREATE UNIQUE INDEX idx_email ON t (email)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'a@x.com')")
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES (2, 'a@x.com')"); err == nil {
		t.Fatal("unique index not enforced")
	}
	// NULLs are exempt.
	mustExec(t, db, "INSERT INTO t VALUES (3, NULL)")
	mustExec(t, db, "INSERT INTO t VALUES (4, NULL)")
}

func TestCreateIndexBackfill(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	mustExec(t, db, "CREATE INDEX idx_age ON users (age)")
	if got := rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE age = 25 ORDER BY name")); got != "bob\ndave\n" {
		t.Fatalf("backfilled index: %q", got)
	}
	// Unique backfill over duplicate data must fail.
	if _, err := db.Exec(context.Background(), "CREATE UNIQUE INDEX idx_age2 ON users (age)"); err == nil {
		t.Fatal("unique backfill over duplicates succeeded")
	}
}

func TestRangeQueriesOnPK(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE seq (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 1; i <= 100; i++ {
		mustExec(t, db, "INSERT INTO seq VALUES (?, ?)", sql.Int(int64(i)), sql.Text(fmt.Sprintf("v%d", i)))
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM seq WHERE id > 90")); got != "10\n" {
		t.Fatalf("range: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT v FROM seq WHERE id >= 5 AND id < 8 ORDER BY id")); got != "v5\nv6\nv7\n" {
		t.Fatalf("range: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT v FROM seq WHERE id BETWEEN 98 AND 100 ORDER BY id")); got != "v98\nv99\nv100\n" {
		t.Fatalf("between: %q", got)
	}
}

func TestRowidTableWithoutPK(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE log (msg TEXT, sev INTEGER)")
	mustExec(t, db, "INSERT INTO log VALUES ('a', 1), ('b', 2), ('c', 1)")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM log WHERE sev = 1")); got != "2\n" {
		t.Fatalf("%q", got)
	}
	mustExec(t, db, "DELETE FROM log WHERE msg = 'b'")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM log")); got != "2\n" {
		t.Fatalf("%q", got)
	}
}

func TestExplicitTransactionCommit(t *testing.T) {
	db := newDB(t, 2)
	setupUsers(t, db)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE users SET age = 0 WHERE id = 1")
	mustExec(t, db, "UPDATE users SET age = 99 WHERE id = 2")
	// A second session must not see the uncommitted writes.
	db2 := sql.NewDBWithCatalog(db.Client(), db.Catalog())
	if got := rowsToString(mustQuery(t, db2, "SELECT age FROM users WHERE id = 1")); got != "30\n" {
		t.Fatalf("dirty read: %q", got)
	}
	mustExec(t, db, "COMMIT")
	if got := rowsToString(mustQuery(t, db2, "SELECT age FROM users WHERE id = 1")); got != "0\n" {
		t.Fatalf("after commit: %q", got)
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "DELETE FROM users")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users")); got != "0\n" {
		t.Fatalf("tx does not see own delete: %q", got)
	}
	mustExec(t, db, "ROLLBACK")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users")); got != "5\n" {
		t.Fatalf("rollback failed: %q", got)
	}
}

func TestTransactionConflictSurfaces(t *testing.T) {
	db1 := newDB(t, 1)
	setupUsers(t, db1)
	db2 := sql.NewDBWithCatalog(db1.Client(), db1.Catalog())

	mustExec(t, db1, "BEGIN")
	mustExec(t, db2, "BEGIN")
	// Both read-modify-write the same row.
	mustQuery(t, db1, "SELECT age FROM users WHERE id = 1")
	mustQuery(t, db2, "SELECT age FROM users WHERE id = 1")
	mustExec(t, db1, "UPDATE users SET age = 31 WHERE id = 1")
	mustExec(t, db2, "UPDATE users SET age = 32 WHERE id = 1")
	mustExec(t, db1, "COMMIT")
	_, err := db1.Exec(context.Background(), "SELECT 1") // no-op spacing
	_ = err
	if _, err := db2.Exec(context.Background(), "COMMIT"); !errors.Is(err, kv.ErrConflict) {
		t.Fatalf("second committer: %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	mustExec(t, db, "DROP TABLE users")
	if _, err := db.Query(context.Background(), "SELECT * FROM users"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	// Re-create with the same name.
	mustExec(t, db, "CREATE TABLE users (id INTEGER PRIMARY KEY, x TEXT)")
	mustExec(t, db, "INSERT INTO users VALUES (1, 'fresh')")
	if got := rowsToString(mustQuery(t, db, "SELECT x FROM users")); got != "fresh\n" {
		t.Fatalf("recreated table: %q", got)
	}
}

func TestIfNotExistsAndIfExists(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "DROP TABLE IF EXISTS missing")
	mustExec(t, db, "DROP INDEX IF EXISTS missing_idx")
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INTEGER PRIMARY KEY)"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := newDB(t, 1)
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT 1 + 2 * 3", "7\n"},
		{"SELECT (1 + 2) * 3", "9\n"},
		{"SELECT 10 / 4", "2\n"},
		{"SELECT 10.0 / 4", "2.5\n"},
		{"SELECT 10 / 0", "NULL\n"},
		{"SELECT -5", "-5\n"},
		{"SELECT 'a' || 'b' || 'c'", "abc\n"},
		{"SELECT length('hello')", "5\n"},
		{"SELECT upper('abc'), lower('ABC')", "ABC|abc\n"},
		{"SELECT abs(-3), abs(2.5)", "3|2.5\n"},
		{"SELECT coalesce(NULL, NULL, 7)", "7\n"},
		{"SELECT NULL IS NULL", "1\n"},
		{"SELECT 1 = NULL", "NULL\n"},
		{"SELECT 1 WHERE 0", ""},
		{"SELECT 1 WHERE NULL", ""},
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestNullHandlingInData(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)")
	cases := []struct {
		q    string
		want string
	}{
		{"SELECT count(*) FROM t", "3\n"},
		{"SELECT count(v) FROM t", "2\n"},
		{"SELECT sum(v) FROM t", "40\n"},
		{"SELECT id FROM t WHERE v IS NULL", "2\n"},
		{"SELECT id FROM t WHERE v IS NOT NULL ORDER BY id", "1\n3\n"},
		{"SELECT id FROM t WHERE v > 5 ORDER BY id", "1\n3\n"}, // NULL row filtered
		{"SELECT id FROM t ORDER BY v", "2\n1\n3\n"},           // NULL sorts first
	}
	for _, tc := range cases {
		if got := rowsToString(mustQuery(t, db, tc.q)); got != tc.want {
			t.Errorf("%s:\ngot  %q\nwant %q", tc.q, got, tc.want)
		}
	}
}

func TestDistinct(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	if got := rowsToString(mustQuery(t, db, "SELECT DISTINCT city FROM users ORDER BY city")); got != "berlin\nlondon\nparis\n" {
		t.Fatalf("%q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT DISTINCT age FROM users WHERE city = 'london' ORDER BY age")); got != "25\n40\n" {
		t.Fatalf("%q", got)
	}
}

func TestTextPrimaryKey(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE kvs (k TEXT PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO kvs VALUES ('alpha', '1'), ('beta', '2')")
	if got := rowsToString(mustQuery(t, db, "SELECT v FROM kvs WHERE k = 'beta'")); got != "2\n" {
		t.Fatalf("%q", got)
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO kvs VALUES ('alpha', 'dup')"); err == nil {
		t.Fatal("text pk uniqueness")
	}
	// Range over text PK.
	if got := rowsToString(mustQuery(t, db, "SELECT k FROM kvs WHERE k >= 'b' ORDER BY k")); got != "beta\n" {
		t.Fatalf("%q", got)
	}
}

func TestTypeCoercion(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, f REAL, s TEXT)")
	// Int into REAL column; numeric string into INTEGER pk.
	mustExec(t, db, "INSERT INTO t VALUES ('7', 3, 42)")
	rows := mustQuery(t, db, "SELECT id, f, s FROM t")
	got := rowsToString(rows)
	if got != "7|3|42\n" {
		t.Fatalf("%q", got)
	}
	r := rows.All()[0]
	if r[0].T != sql.TypeInt || r[1].T != sql.TypeFloat || r[2].T != sql.TypeText {
		t.Fatalf("types: %v %v %v", r[0].T, r[1].T, r[2].T)
	}
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES ('not-a-number', 0, '')"); err == nil {
		t.Fatal("bad coercion accepted")
	}
}

func TestParameters(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	rows := mustQuery(t, db, "SELECT name FROM users WHERE age > ? AND city = ? ORDER BY name",
		sql.Int(24), sql.Text("london"))
	if got := rowsToString(rows); got != "bob\nerin\n" {
		t.Fatalf("%q", got)
	}
	if _, err := db.Query(context.Background(), "SELECT ? "); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

func TestManyRowsAcrossSplits(t *testing.T) {
	db := newDB(t, 4)
	mustExec(t, db, "CREATE TABLE big (id INTEGER PRIMARY KEY, data TEXT)")
	const n = 500
	mustExec(t, db, "BEGIN")
	for i := 0; i < n; i++ {
		mustExec(t, db, "INSERT INTO big VALUES (?, ?)", sql.Int(int64(i)), sql.Text(fmt.Sprintf("data-%d", i)))
	}
	mustExec(t, db, "COMMIT")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM big")); got != "500\n" {
		t.Fatalf("count: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT data FROM big WHERE id = 499")); got != "data-499\n" {
		t.Fatalf("point: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM big WHERE id >= 100 AND id < 200")); got != "100\n" {
		t.Fatalf("range: %q", got)
	}
}

func TestFreshCatalogSeesCommittedSchema(t *testing.T) {
	db := newDB(t, 2)
	setupUsers(t, db)
	// A session with its own catalog (fresh caches) must read the
	// schema from the catalog tree and see the data.
	db2 := sql.NewDB(db.Client(), dbt.Config{MaxCells: 16})
	defer db2.Close()
	if got := rowsToString(mustQuery(t, db2, "SELECT count(*) FROM users")); got != "5\n" {
		t.Fatalf("%q", got)
	}
}
