package sql_test

import (
	"context"
	"testing"

	"yesquel/internal/sql"
)

func TestPreparedStatement(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	ctx := context.Background()

	sel, err := db.Prepare("SELECT name FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumParams() != 1 {
		t.Fatalf("NumParams = %d", sel.NumParams())
	}
	for id, want := range map[int64]string{1: "alice", 3: "carol", 5: "erin"} {
		rows, err := sel.Query(ctx, sql.Int(id))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 1 || rows.All()[0][0].S != want {
			t.Fatalf("id %d: %+v", id, rows.All())
		}
	}

	ins, err := db.Prepare("INSERT INTO users (id, name) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(100); i < 110; i++ {
		if _, err := ins.Exec(ctx, sql.Int(i), sql.Text("gen")); err != nil {
			t.Fatal(err)
		}
	}
	rows := mustQuery(t, db, "SELECT count(*) FROM users WHERE name = 'gen'")
	if rows.All()[0][0].I != 10 {
		t.Fatalf("prepared inserts: %+v", rows.All())
	}
}

func TestPreparedStatementMissingArgs(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	sel, err := db.Prepare("SELECT name FROM users WHERE id = ? AND age = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Query(context.Background(), sql.Int(1)); err == nil {
		t.Fatal("missing arg accepted")
	}
}

func TestPreparedStatementParseErrors(t *testing.T) {
	db := newDB(t, 1)
	if _, err := db.Prepare("SELEC broken"); err == nil {
		t.Fatal("bad SQL prepared")
	}
}

func TestParseCacheReuse(t *testing.T) {
	// The same query text through Exec/Query reuses the cached parse;
	// correctness must be unaffected by cache hits.
	db := newDB(t, 1)
	setupUsers(t, db)
	for i := 0; i < 50; i++ {
		rows := mustQuery(t, db, "SELECT count(*) FROM users WHERE age > ?", sql.Int(int64(i%40)))
		if rows.Len() != 1 {
			t.Fatal("bad result through parse cache")
		}
	}
}
