// Package sql implements Yesquel's embedded query processor — box 1 in
// Figure 1 of the paper. Every client links the whole processor (lexer,
// parser, planner, executor, catalog) as a library, so query processing
// capacity scales with the number of clients; only storage operations
// (DBT reads and writes) leave the process.
//
// The supported dialect covers the paper's target workload — the small,
// fast queries of Web applications: CREATE/DROP TABLE, CREATE/DROP
// INDEX, INSERT, SELECT (WHERE, inner JOIN, GROUP BY, aggregates, ORDER
// BY, LIMIT/OFFSET), UPDATE, DELETE, and BEGIN/COMMIT/ROLLBACK mapped
// onto kv transactions.
package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type is the dynamic type of a SQL value.
type Type uint8

const (
	// TypeNull is the SQL NULL.
	TypeNull Type = iota
	// TypeInt is a 64-bit signed integer.
	TypeInt
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeText is a string.
	TypeText
	// TypeBlob is a byte string.
	TypeBlob
)

func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBlob:
		return "BLOB"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Value is one SQL value. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B []byte
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a real value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Text returns a text value.
func Text(s string) Value { return Value{T: TypeText, S: s} }

// Blob returns a blob value (not copied).
func Blob(b []byte) Value { return Value{T: TypeBlob, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Num returns the value as a float64 for arithmetic (0 for non-numeric).
func (v Value) Num() float64 {
	switch v.T {
	case TypeInt:
		return float64(v.I)
	case TypeFloat:
		return v.F
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBlob:
		return fmt.Sprintf("x'%x'", v.B)
	}
	return "?"
}

// Compare orders two non-NULL values. Across types the order is
// numbers < text < blob (as in SQLite); ints and floats compare
// numerically. Comparing with NULL is the caller's concern (3-valued
// logic); here NULL sorts first, which is what ORDER BY needs.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.T), typeRank(b.T)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both null
		return 0
	case 1: // numeric
		af, bf := a.Num(), b.Num()
		// Exact comparison for int-int avoids float rounding.
		if a.T == TypeInt && b.T == TypeInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.S, b.S)
	default:
		return bytesCompare(a.B, b.B)
	}
}

func typeRank(t Type) int {
	switch t {
	case TypeNull:
		return 0
	case TypeInt, TypeFloat:
		return 1
	case TypeText:
		return 2
	default:
		return 3
	}
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Truthy reports the WHERE-clause interpretation of v: NULL and zero
// are false.
func (v Value) Truthy() bool {
	switch v.T {
	case TypeNull:
		return false
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeText:
		return v.S != ""
	case TypeBlob:
		return len(v.B) != 0
	}
	return false
}

// Coerce converts v to the declared column type ct, following SQLite-
// style affinity: numbers convert between int and float, text parses to
// numbers when well-formed, NULL stays NULL.
func Coerce(v Value, ct Type) (Value, error) {
	if v.T == TypeNull || v.T == ct {
		return v, nil
	}
	switch ct {
	case TypeInt:
		switch v.T {
		case TypeFloat:
			if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
				return Int(int64(v.F)), nil
			}
			return v, nil // keep as float: lossless storage wins
		case TypeText:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64); err == nil {
				return Int(i), nil
			}
			return Value{}, fmt.Errorf("sql: cannot coerce %q to INTEGER", v.S)
		}
	case TypeFloat:
		switch v.T {
		case TypeInt:
			return Float(float64(v.I)), nil
		case TypeText:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return Float(f), nil
			}
			return Value{}, fmt.Errorf("sql: cannot coerce %q to REAL", v.S)
		}
	case TypeText:
		return Text(v.String()), nil
	case TypeBlob:
		if v.T == TypeText {
			return Blob([]byte(v.S)), nil
		}
	}
	return Value{}, fmt.Errorf("sql: cannot coerce %s to %s", v.T, ct)
}
