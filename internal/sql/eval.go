package sql

import (
	"fmt"
	"math"
	"strings"
)

// binding exposes one table's current row to expression evaluation.
type binding struct {
	alias  string // table alias (or name)
	schema *TableSchema
	row    []Value
}

// env is the evaluation environment: the bound rows and the statement
// parameters.
type env struct {
	bindings []*binding
	params   []Value
}

// resolve finds the column and returns its current value.
func (e *env) resolve(c ColRef) (Value, error) {
	var found *binding
	var idx int
	for _, b := range e.bindings {
		if c.Table != "" && c.Table != b.alias {
			continue
		}
		if i := b.schema.ColIndex(c.Col); i >= 0 {
			if found != nil {
				return Null, fmt.Errorf("sql: ambiguous column %s", c.Col)
			}
			found = b
			idx = i
		}
	}
	if found == nil {
		if c.Table != "" {
			return Null, fmt.Errorf("sql: no such column %s.%s", c.Table, c.Col)
		}
		return Null, fmt.Errorf("sql: no such column %s", c.Col)
	}
	if found.row == nil {
		return Null, nil
	}
	return found.row[idx], nil
}

// eval evaluates expr in env with SQL NULL propagation.
func (e *env) eval(x Expr) (Value, error) {
	switch t := x.(type) {
	case Lit:
		return t.V, nil
	case Param:
		if t.N >= len(e.params) {
			return Null, fmt.Errorf("sql: missing argument for parameter %d", t.N+1)
		}
		return e.params[t.N], nil
	case ColRef:
		return e.resolve(t)
	case BinOp:
		return e.evalBinOp(t)
	case UnOp:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		switch t.Op {
		case "-":
			switch v.T {
			case TypeNull:
				return Null, nil
			case TypeInt:
				return Int(-v.I), nil
			case TypeFloat:
				return Float(-v.F), nil
			}
			return Null, fmt.Errorf("sql: cannot negate %s", v.T)
		case "not":
			if v.IsNull() {
				return Null, nil
			}
			if v.Truthy() {
				return Int(0), nil
			}
			return Int(1), nil
		}
		return Null, fmt.Errorf("sql: unknown unary op %s", t.Op)
	case IsNull:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		res := v.IsNull()
		if t.Not {
			res = !res
		}
		if res {
			return Int(1), nil
		}
		return Int(0), nil
	case InList:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		anyNull := false
		for _, le := range t.List {
			lv, err := e.eval(le)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() {
				anyNull = true
				continue
			}
			if Compare(v, lv) == 0 {
				if t.Not {
					return Int(0), nil
				}
				return Int(1), nil
			}
		}
		if anyNull {
			return Null, nil
		}
		if t.Not {
			return Int(1), nil
		}
		return Int(0), nil
	case Between:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		lo, err := e.eval(t.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := e.eval(t.Hi)
		if err != nil {
			return Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null, nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if t.Not {
			in = !in
		}
		if in {
			return Int(1), nil
		}
		return Int(0), nil
	case Call:
		return e.evalScalarCall(t)
	case Star:
		return Null, fmt.Errorf("sql: * is only valid as a projection")
	}
	return Null, fmt.Errorf("sql: cannot evaluate %T", x)
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

func (e *env) evalBinOp(t BinOp) (Value, error) {
	// AND / OR use three-valued logic with short-circuiting.
	switch t.Op {
	case "and":
		l, err := e.eval(t.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.Truthy() {
			return Int(0), nil
		}
		r, err := e.eval(t.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && !r.Truthy() {
			return Int(0), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Int(1), nil
	case "or":
		l, err := e.eval(t.L)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.Truthy() {
			return Int(1), nil
		}
		r, err := e.eval(t.R)
		if err != nil {
			return Null, err
		}
		if !r.IsNull() && r.Truthy() {
			return Int(1), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Int(0), nil
	}

	l, err := e.eval(t.L)
	if err != nil {
		return Null, err
	}
	r, err := e.eval(t.R)
	if err != nil {
		return Null, err
	}
	switch t.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := Compare(l, r)
		switch t.Op {
		case "=":
			return boolVal(c == 0), nil
		case "!=":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		case ">=":
			return boolVal(c >= 0), nil
		}
	case "like":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return boolVal(likeMatch(r.String(), l.String())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Text(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return arith(t.Op, l, r)
	}
	return Null, fmt.Errorf("sql: unknown operator %s", t.Op)
}

func arith(op string, l, r Value) (Value, error) {
	if (l.T != TypeInt && l.T != TypeFloat) || (r.T != TypeInt && r.T != TypeFloat) {
		return Null, fmt.Errorf("sql: %s on non-numeric values", op)
	}
	if l.T == TypeInt && r.T == TypeInt {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Null, nil // SQL: division by zero yields NULL
			}
			return Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Null, nil
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, rf := l.Num(), r.Num()
	switch op {
	case "+":
		return Float(lf + rf), nil
	case "-":
		return Float(lf - rf), nil
	case "*":
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null, nil
		}
		return Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return Null, nil
		}
		return Float(math.Mod(lf, rf)), nil
	}
	return Null, fmt.Errorf("sql: unknown arithmetic op %s", op)
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
// Matching is case-insensitive, as in SQLite's default.
func likeMatch(pattern, s string) bool {
	return likeRec(strings.ToLower(pattern), strings.ToLower(s))
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// evalScalarCall evaluates non-aggregate functions. Aggregates are
// handled by the executor; reaching one here is an error.
func (e *env) evalScalarCall(t Call) (Value, error) {
	switch t.Fn {
	case "count", "sum", "avg", "min", "max":
		return Null, fmt.Errorf("sql: aggregate %s() in non-aggregate context", t.Fn)
	}
	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := e.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	switch t.Fn {
	case "length":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: length() takes one argument")
		}
		switch args[0].T {
		case TypeNull:
			return Null, nil
		case TypeText:
			return Int(int64(len(args[0].S))), nil
		case TypeBlob:
			return Int(int64(len(args[0].B))), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "abs":
		if len(args) != 1 {
			return Null, fmt.Errorf("sql: abs() takes one argument")
		}
		switch args[0].T {
		case TypeNull:
			return Null, nil
		case TypeInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case TypeFloat:
			return Float(math.Abs(args[0].F)), nil
		}
		return Null, fmt.Errorf("sql: abs() on non-numeric value")
	case "upper":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToUpper(args[0].String())), nil
	case "lower":
		if len(args) != 1 || args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToLower(args[0].String())), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	}
	return Null, fmt.Errorf("sql: unknown function %s", t.Fn)
}

// hasAggregate reports whether expr contains an aggregate call.
func hasAggregate(x Expr) bool {
	switch t := x.(type) {
	case Call:
		switch t.Fn {
		case "count", "sum", "avg", "min", "max":
			return true
		}
		for _, a := range t.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case BinOp:
		return hasAggregate(t.L) || hasAggregate(t.R)
	case UnOp:
		return hasAggregate(t.E)
	case IsNull:
		return hasAggregate(t.E)
	case InList:
		if hasAggregate(t.E) {
			return true
		}
		for _, a := range t.List {
			if hasAggregate(a) {
				return true
			}
		}
	case Between:
		return hasAggregate(t.E) || hasAggregate(t.Lo) || hasAggregate(t.Hi)
	}
	return false
}
