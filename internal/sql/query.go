package sql

import (
	"context"
	"fmt"
	"sort"

	"yesquel/internal/kv/kvclient"
)

// SELECT execution: a left-deep nested-loop join over planned access
// paths, feeding either a plain projector or a hash aggregator, then
// DISTINCT, ORDER BY, and LIMIT/OFFSET. Everything after the scans is
// in-memory — the paper's workload is small fast queries, and the DBT
// delivers rows already ordered by key for the common ORDER-BY-PK case.

// aggRef is an internal expression node: a reference to the i-th
// aggregate computed for the current group.
type aggRef struct{ N int }

func (aggRef) expr() {}

// rewriteAggs replaces aggregate calls in x with aggRef nodes,
// appending the original calls to *aggs.
func rewriteAggs(x Expr, aggs *[]Call) Expr {
	switch t := x.(type) {
	case Call:
		switch t.Fn {
		case "count", "sum", "avg", "min", "max":
			*aggs = append(*aggs, t)
			return aggRef{N: len(*aggs) - 1}
		}
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewriteAggs(a, aggs)
		}
		return Call{Fn: t.Fn, Args: args, Star: t.Star, Distinct: t.Distinct}
	case BinOp:
		return BinOp{Op: t.Op, L: rewriteAggs(t.L, aggs), R: rewriteAggs(t.R, aggs)}
	case UnOp:
		return UnOp{Op: t.Op, E: rewriteAggs(t.E, aggs)}
	case IsNull:
		return IsNull{E: rewriteAggs(t.E, aggs), Not: t.Not}
	case Between:
		return Between{E: rewriteAggs(t.E, aggs), Lo: rewriteAggs(t.Lo, aggs), Hi: rewriteAggs(t.Hi, aggs), Not: t.Not}
	case InList:
		list := make([]Expr, len(t.List))
		for i, le := range t.List {
			list[i] = rewriteAggs(le, aggs)
		}
		return InList{E: rewriteAggs(t.E, aggs), List: list, Not: t.Not}
	}
	return x
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	sumIsInt bool
	haveSum  bool
	min, max Value
	distinct map[string]bool
}

func (a *aggState) add(v Value, distinct bool) {
	if v.IsNull() {
		return
	}
	if distinct {
		if a.distinct == nil {
			a.distinct = make(map[string]bool)
		}
		k := string(EncodeKey(v))
		if a.distinct[k] {
			return
		}
		a.distinct[k] = true
	}
	a.count++
	switch v.T {
	case TypeInt:
		if !a.haveSum {
			a.sumIsInt = true
		}
		a.sumI += v.I
		a.sumF += float64(v.I)
	case TypeFloat:
		a.sumIsInt = false
		a.sumF += v.F
	}
	a.haveSum = true
	if a.min.IsNull() || Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || Compare(v, a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(fn string) Value {
	switch fn {
	case "count":
		return Int(a.count)
	case "sum":
		if !a.haveSum {
			return Null
		}
		if a.sumIsInt {
			return Int(a.sumI)
		}
		return Float(a.sumF)
	case "avg":
		if a.count == 0 {
			return Null
		}
		return Float(a.sumF / float64(a.count))
	case "min":
		return a.min
	case "max":
		return a.max
	}
	return Null
}

// aggEnv evaluates expressions containing aggRef nodes.
type aggEnv struct {
	*env
	aggVals []Value
}

func (e *aggEnv) eval(x Expr) (Value, error) {
	if r, ok := x.(aggRef); ok {
		return e.aggVals[r.N], nil
	}
	// Recurse through composite nodes so nested aggRefs resolve; leaves
	// fall through to the plain evaluator.
	switch t := x.(type) {
	case BinOp:
		return e.evalBin(t)
	case UnOp:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		return e.env.eval(UnOp{Op: t.Op, E: Lit{V: v}})
	case IsNull:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		return e.env.eval(IsNull{E: Lit{V: v}, Not: t.Not})
	case Between:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		lo, err := e.eval(t.Lo)
		if err != nil {
			return Null, err
		}
		hi, err := e.eval(t.Hi)
		if err != nil {
			return Null, err
		}
		return e.env.eval(Between{E: Lit{V: v}, Lo: Lit{V: lo}, Hi: Lit{V: hi}, Not: t.Not})
	case InList:
		v, err := e.eval(t.E)
		if err != nil {
			return Null, err
		}
		list := make([]Expr, len(t.List))
		for i, le := range t.List {
			lv, err := e.eval(le)
			if err != nil {
				return Null, err
			}
			list[i] = Lit{V: lv}
		}
		return e.env.eval(InList{E: Lit{V: v}, List: list, Not: t.Not})
	case Call:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			v, err := e.eval(a)
			if err != nil {
				return Null, err
			}
			args[i] = Lit{V: v}
		}
		return e.env.eval(Call{Fn: t.Fn, Args: args, Star: t.Star})
	}
	return e.env.eval(x)
}

func (e *aggEnv) evalBin(t BinOp) (Value, error) {
	// Short-circuit semantics preserved by delegating to env after
	// resolving the sides (aggregates cannot appear under AND/OR with
	// side effects anyway).
	l, err := e.eval(t.L)
	if err != nil {
		return Null, err
	}
	r, err := e.eval(t.R)
	if err != nil {
		return Null, err
	}
	return e.env.eval(BinOp{Op: t.Op, L: Lit{V: l}, R: Lit{V: r}})
}

// joinedRow is one output of the join pipeline: the bindings' rows at
// the moment the row matched.
type joinedRow struct {
	rows [][]Value
}

func (db *DB) execSelect(ctx context.Context, tx *kvclient.Tx, st Select, args []Value) (*Rows, error) {
	// Resolve FROM tables.
	type src struct {
		ref   TableRef
		alias string
		table *Table
	}
	var srcs []src
	if st.From != nil {
		refs := []TableRef{*st.From}
		for _, j := range st.Joins {
			refs = append(refs, j.Right)
		}
		for _, r := range refs {
			alias := r.Alias
			if alias == "" {
				alias = r.Name
			}
			table, err := db.cat.GetTable(ctx, tx, r.Name)
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, src{ref: r, alias: alias, table: table})
		}
	}

	// Build the evaluation environment.
	e := &env{params: args}
	for _, s := range srcs {
		e.bindings = append(e.bindings, &binding{alias: s.alias, schema: s.table.Schema})
	}

	// Gather all predicate conjuncts (WHERE plus every ON): each is
	// applied as soon as all its tables are bound.
	var allConj []Expr
	allConj = conjuncts(st.Where, allConj)
	for _, j := range st.Joins {
		allConj = conjuncts(j.On, allConj)
	}

	// Projection expansion (*, t.*) and output naming.
	items, colNames, err := expandItems(st.Items, e)
	if err != nil {
		return nil, err
	}

	// Aggregate detection.
	isAgg := len(st.GroupBy) > 0 || st.Having != nil
	for _, it := range items {
		if hasAggregate(it.E) {
			isAgg = true
		}
	}

	// ORDER BY pushdown: a single-table query ordered by the primary
	// key ascending needs no sort — the DBT scan already delivers rows
	// in primary-key order (and an index-equality scan delivers them in
	// row-key order within the fixed value). This also re-enables early
	// LIMIT termination for the Web-typical `ORDER BY pk LIMIT n`.
	orderBy := st.OrderBy
	if len(srcs) == 1 && !isAgg && !st.Distinct && len(orderBy) == 1 && !orderBy[0].Desc {
		s0 := srcs[0]
		if pk := s0.table.Schema.PKCol; pk >= 0 {
			if cr, ok := orderBy[0].E.(ColRef); ok &&
				cr.Col == s0.table.Schema.Cols[pk].Name &&
				(cr.Table == "" || cr.Table == s0.alias) {
				path := planAccess(s0.table, s0.alias, allConj, nil)
				if path.kind != pathIdxRange {
					orderBy = nil // scan order == requested order
				}
			}
		}
	}

	// The scan pipeline produces joined rows.
	var joined []joinedRow
	limitEarly := -1
	if !isAgg && len(orderBy) == 0 && !st.Distinct && st.Limit != nil {
		// Early termination: LIMIT without sorting can stop the scan.
		lim, off, err := evalLimit(e, st)
		if err != nil {
			return nil, err
		}
		if lim >= 0 {
			limitEarly = lim + off
		}
	}

	// Conjunct readiness: a conjunct applies at depth d if it
	// references only aliases bound at depths <= d.
	aliasDepth := make(map[string]int)
	for i, s := range srcs {
		aliasDepth[s.alias] = i
	}
	conjDepth := make([][]Expr, len(srcs)+1)
	for _, c := range allConj {
		d := predicateDepth(c, aliasDepth, e)
		conjDepth[d] = append(conjDepth[d], c)
	}

	var recurse func(depth int) (bool, error)
	recurse = func(depth int) (bool, error) {
		if depth == len(srcs) {
			rows := make([][]Value, len(e.bindings))
			for i, b := range e.bindings {
				rows[i] = b.row
			}
			joined = append(joined, joinedRow{rows: rows})
			if limitEarly >= 0 && len(joined) >= limitEarly {
				return false, nil
			}
			return true, nil
		}
		s := srcs[depth]
		outer := make(map[string]bool)
		for i := 0; i < depth; i++ {
			outer[srcs[i].alias] = true
		}
		path := planAccess(s.table, s.alias, conjDepth[depth+1], outer)
		cont := true
		err := db.scanTable(ctx, tx, s.table, path, e, func(rowKey []byte, row []Value) (bool, error) {
			e.bindings[depth].row = row
			// Apply predicates that become decidable at this depth.
			for _, c := range conjDepth[depth+1] {
				v, err := e.eval(c)
				if err != nil {
					return false, err
				}
				if v.IsNull() || !v.Truthy() {
					return true, nil // next row of this table
				}
			}
			c2, err := recurse(depth + 1)
			if err != nil {
				return false, err
			}
			cont = c2
			return c2, nil
		})
		e.bindings[depth].row = nil
		return cont, err
	}

	if st.From == nil {
		// SELECT without FROM: one empty row, filtered by WHERE if any.
		keep := true
		if st.Where != nil {
			v, err := e.eval(st.Where)
			if err != nil {
				return nil, err
			}
			keep = !v.IsNull() && v.Truthy()
		}
		if keep {
			joined = append(joined, joinedRow{rows: nil})
		}
	} else {
		if _, err := recurse(0); err != nil {
			return nil, err
		}
	}

	// Project (plain or aggregate).
	var outRows [][]Value
	var orderKeys [][]Value
	if isAgg {
		outRows, orderKeys, err = db.aggregate(e, st, items, joined)
		if err != nil {
			return nil, err
		}
	} else {
		for _, jr := range joined {
			for i, b := range e.bindings {
				b.row = jr.rows[i]
			}
			row := make([]Value, len(items))
			for i, it := range items {
				v, err := e.eval(it.E)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			outRows = append(outRows, row)
			if len(orderBy) > 0 {
				keys, err := evalOrderKeys(e, orderBy, items, row)
				if err != nil {
					return nil, err
				}
				orderKeys = append(orderKeys, keys)
			}
		}
	}

	// DISTINCT.
	if st.Distinct {
		seen := make(map[string]bool)
		kept := outRows[:0]
		var keptKeys [][]Value
		for i, r := range outRows {
			k := string(EncodeKey(r...))
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, r)
			if orderKeys != nil {
				keptKeys = append(keptKeys, orderKeys[i])
			}
		}
		outRows = kept
		if orderKeys != nil {
			orderKeys = keptKeys
		}
	}

	// ORDER BY.
	if len(orderBy) > 0 {
		idx := make([]int, len(outRows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := orderKeys[idx[a]], orderKeys[idx[b]]
			for i := range orderBy {
				c := Compare(ka[i], kb[i])
				if c != 0 {
					if orderBy[i].Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		sorted := make([][]Value, len(outRows))
		for i, j := range idx {
			sorted[i] = outRows[j]
		}
		outRows = sorted
	}

	// LIMIT / OFFSET.
	lim, off, err := evalLimit(e, st)
	if err != nil {
		return nil, err
	}
	if off > 0 {
		if off >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[off:]
		}
	}
	if lim >= 0 && lim < len(outRows) {
		outRows = outRows[:lim]
	}

	return &Rows{Columns: colNames, rows: outRows}, nil
}

// predicateDepth returns 1 + the highest binding index referenced, i.e.
// the join depth at which the conjunct becomes decidable. Unqualified
// column refs resolve to whichever binding has the column.
func predicateDepth(c Expr, aliasDepth map[string]int, e *env) int {
	max := 0
	var walk func(x Expr)
	walk = func(x Expr) {
		switch t := x.(type) {
		case ColRef:
			d := 0
			if t.Table != "" {
				if ad, ok := aliasDepth[t.Table]; ok {
					d = ad + 1
				}
			} else {
				for i, b := range e.bindings {
					if b.schema.ColIndex(t.Col) >= 0 {
						d = i + 1
						break
					}
				}
			}
			if d > max {
				max = d
			}
		case BinOp:
			walk(t.L)
			walk(t.R)
		case UnOp:
			walk(t.E)
		case IsNull:
			walk(t.E)
		case Between:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case InList:
			walk(t.E)
			for _, le := range t.List {
				walk(le)
			}
		case Call:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	walk(c)
	if max == 0 {
		max = len(e.bindings) // constant predicates: apply at the first row
	}
	return max
}

// expandItems expands * and t.* and derives output column names.
func expandItems(items []SelectItem, e *env) ([]SelectItem, []string, error) {
	var out []SelectItem
	var names []string
	for _, it := range items {
		if star, ok := it.E.(Star); ok {
			found := false
			for _, b := range e.bindings {
				if star.Table != "" && star.Table != b.alias {
					continue
				}
				found = true
				for _, c := range b.schema.Cols {
					out = append(out, SelectItem{E: ColRef{Table: b.alias, Col: c.Name}})
					names = append(names, c.Name)
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("sql: no table for %s.*", star.Table)
			}
			continue
		}
		out = append(out, it)
		switch {
		case it.Alias != "":
			names = append(names, it.Alias)
		default:
			if cr, ok := it.E.(ColRef); ok {
				names = append(names, cr.Col)
			} else {
				names = append(names, fmt.Sprintf("col%d", len(names)+1))
			}
		}
	}
	return out, names, nil
}

// evalOrderKeys computes the sort key values for one output row.
// ORDER BY can reference output aliases, column positions (1-based
// integers), or arbitrary expressions over the source row.
func evalOrderKeys(e *env, order []OrderItem, items []SelectItem, outRow []Value) ([]Value, error) {
	keys := make([]Value, len(order))
	for i, oi := range order {
		// Positional: ORDER BY 2.
		if lit, ok := oi.E.(Lit); ok && lit.V.T == TypeInt {
			n := int(lit.V.I)
			if n < 1 || n > len(outRow) {
				return nil, fmt.Errorf("sql: ORDER BY position %d out of range", n)
			}
			keys[i] = outRow[n-1]
			continue
		}
		// Alias reference.
		if cr, ok := oi.E.(ColRef); ok && cr.Table == "" {
			matched := false
			for j, it := range items {
				if it.Alias == cr.Col {
					keys[i] = outRow[j]
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		v, err := e.eval(oi.E)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func evalLimit(e *env, st Select) (lim, off int, err error) {
	lim = -1
	if st.Limit != nil {
		v, err := e.eval(st.Limit)
		if err != nil {
			return 0, 0, err
		}
		if v.T != TypeInt || v.I < 0 {
			return 0, 0, fmt.Errorf("sql: bad LIMIT %s", v)
		}
		lim = int(v.I)
	}
	if st.Offset != nil {
		v, err := e.eval(st.Offset)
		if err != nil {
			return 0, 0, err
		}
		if v.T != TypeInt || v.I < 0 {
			return 0, 0, fmt.Errorf("sql: bad OFFSET %s", v)
		}
		off = int(v.I)
	}
	return lim, off, nil
}

// aggregate runs hash aggregation over the joined rows and returns the
// projected group rows plus their ORDER BY keys.
func (db *DB) aggregate(e *env, st Select, items []SelectItem, joined []joinedRow) ([][]Value, [][]Value, error) {
	// Rewrite aggregates out of the projection, HAVING, and ORDER BY.
	var aggs []Call
	rewritten := make([]Expr, len(items))
	for i, it := range items {
		rewritten[i] = rewriteAggs(it.E, &aggs)
	}
	var havingR Expr
	if st.Having != nil {
		havingR = rewriteAggs(st.Having, &aggs)
	}
	orderR := make([]Expr, len(st.OrderBy))
	for i, oi := range st.OrderBy {
		orderR[i] = rewriteAggs(oi.E, &aggs)
	}

	type group struct {
		keyVals []Value
		states  []*aggState
		first   joinedRow
	}
	groups := make(map[string]*group)
	var order []string

	for _, jr := range joined {
		for i, b := range e.bindings {
			b.row = jr.rows[i]
		}
		keyVals := make([]Value, len(st.GroupBy))
		for i, g := range st.GroupBy {
			v, err := e.eval(g)
			if err != nil {
				return nil, nil, err
			}
			keyVals[i] = v
		}
		k := string(EncodeKey(keyVals...))
		g := groups[k]
		if g == nil {
			g = &group{keyVals: keyVals, states: make([]*aggState, len(aggs)), first: jr}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, call := range aggs {
			if call.Star {
				g.states[i].count++
				continue
			}
			if len(call.Args) != 1 {
				return nil, nil, fmt.Errorf("sql: %s() takes one argument", call.Fn)
			}
			v, err := e.eval(call.Args[0])
			if err != nil {
				return nil, nil, err
			}
			g.states[i].add(v, call.Distinct)
		}
	}

	// No GROUP BY: aggregates over the empty input still yield one row.
	if len(st.GroupBy) == 0 && len(groups) == 0 {
		g := &group{states: make([]*aggState, len(aggs))}
		for i := range g.states {
			g.states[i] = &aggState{}
		}
		groups[""] = g
		order = append(order, "")
	}

	var outRows [][]Value
	var orderKeys [][]Value
	for _, k := range order {
		g := groups[k]
		for i, b := range e.bindings {
			if g.first.rows != nil {
				b.row = g.first.rows[i]
			} else {
				b.row = nil
			}
		}
		aggVals := make([]Value, len(aggs))
		for i, call := range aggs {
			aggVals[i] = g.states[i].result(call.Fn)
		}
		ae := &aggEnv{env: e, aggVals: aggVals}
		if havingR != nil {
			v, err := ae.eval(havingR)
			if err != nil {
				return nil, nil, err
			}
			if v.IsNull() || !v.Truthy() {
				continue
			}
		}
		row := make([]Value, len(rewritten))
		for i, rx := range rewritten {
			v, err := ae.eval(rx)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		outRows = append(outRows, row)
		if len(st.OrderBy) > 0 {
			keys := make([]Value, len(orderR))
			for i, ox := range orderR {
				// Positional and alias forms first.
				if lit, ok := st.OrderBy[i].E.(Lit); ok && lit.V.T == TypeInt {
					n := int(lit.V.I)
					if n < 1 || n > len(row) {
						return nil, nil, fmt.Errorf("sql: ORDER BY position %d out of range", n)
					}
					keys[i] = row[n-1]
					continue
				}
				if cr, ok := st.OrderBy[i].E.(ColRef); ok && cr.Table == "" {
					matched := false
					for j, it := range items {
						if it.Alias == cr.Col {
							keys[i] = row[j]
							matched = true
							break
						}
					}
					if matched {
						continue
					}
				}
				v, err := ae.eval(ox)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return outRows, orderKeys, nil
}
