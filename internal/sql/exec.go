package sql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
)

// DB is one session of the embedded query processor. A DB is bound to
// one kv client and is intended for use by one goroutine at a time
// (open one DB per worker, as a Web application opens one connection
// per request handler). Multiple DBs over the same or different
// kvclient.Clients compose freely — that is the architecture's point.
type DB struct {
	c   *kvclient.Client
	cat *Catalog

	tx         *kvclient.Tx // non-nil inside BEGIN..COMMIT
	maxRetries int
	parseCache map[string]parsedEntry
}

// Result reports the effect of a statement.
type Result struct {
	RowsAffected int64
}

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	rows    [][]Value
	pos     int
}

// Next advances to the next row; it must be called before the first Row.
func (r *Rows) Next() bool {
	if r.pos >= len(r.rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row after a successful Next.
func (r *Rows) Row() []Value { return r.rows[r.pos-1] }

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

// All returns every row.
func (r *Rows) All() [][]Value { return r.rows }

// NewDB returns a session over the client. treeCfg configures the DBT
// handles this session opens.
func NewDB(c *kvclient.Client, treeCfg dbt.Config) *DB {
	return &DB{c: c, cat: NewCatalog(c, treeCfg), maxRetries: defaultMaxRetries}
}

// defaultMaxRetries bounds auto-commit conflict retries. Conflicts come
// in bursts when a hot leaf is being split (structural writes abort
// concurrent deltas by design), so the budget is generous; the backoff
// grows to ~25ms, long enough to ride out a split chain.
const defaultMaxRetries = 30

// NewDBWithCatalog returns a session sharing an existing catalog (and
// hence its tree handles and caches); used to run many sessions per
// process without one splitter goroutine per session.
func NewDBWithCatalog(c *kvclient.Client, cat *Catalog) *DB {
	return &DB{c: c, cat: cat, maxRetries: defaultMaxRetries}
}

// Catalog exposes the session's catalog.
func (db *DB) Catalog() *Catalog { return db.cat }

// Client exposes the underlying kv client.
func (db *DB) Client() *kvclient.Client { return db.c }

// Close releases catalog handles. It does not close the kv client.
func (db *DB) Close() { db.cat.Close() }

// InTx reports whether an explicit transaction is open.
func (db *DB) InTx() bool { return db.tx != nil }

// Tables lists the database's table schemas (outside any explicit
// transaction: at a fresh snapshot).
func (db *DB) Tables(ctx context.Context) ([]*TableSchema, error) {
	if err := db.cat.Ensure(ctx); err != nil {
		return nil, err
	}
	tx := db.tx
	if tx == nil {
		tx = db.c.Begin()
		defer tx.Abort()
	}
	return db.cat.ListTables(ctx, tx)
}

// Indexes lists the database's index schemas.
func (db *DB) Indexes(ctx context.Context) ([]*IndexSchema, error) {
	if err := db.cat.Ensure(ctx); err != nil {
		return nil, err
	}
	tx := db.tx
	if tx == nil {
		tx = db.c.Begin()
		defer tx.Abort()
	}
	return db.cat.ListIndexes(ctx, tx)
}

// Exec runs a statement that returns no rows.
func (db *DB) Exec(ctx context.Context, query string, args ...Value) (Result, error) {
	res, _, err := db.run(ctx, query, args)
	return res, err
}

// Query runs a statement and returns its rows (empty for non-SELECT).
func (db *DB) Query(ctx context.Context, query string, args ...Value) (*Rows, error) {
	_, rows, err := db.run(ctx, query, args)
	if rows == nil {
		rows = &Rows{}
	}
	return rows, err
}

func (db *DB) run(ctx context.Context, query string, args []Value) (Result, *Rows, error) {
	stmt, _, err := db.parse(query)
	if err != nil {
		return Result{}, nil, err
	}
	return db.runParsed(ctx, stmt, args)
}

func (db *DB) runParsed(ctx context.Context, stmt Stmt, args []Value) (Result, *Rows, error) {
	// Bootstrap the catalog before any snapshot is taken (see Ensure).
	if err := db.cat.Ensure(ctx); err != nil {
		return Result{}, nil, err
	}
	switch stmt.(type) {
	case Begin:
		if db.tx != nil {
			return Result{}, nil, errors.New("sql: transaction already open")
		}
		db.tx = db.c.Begin()
		return Result{}, nil, nil
	case Commit:
		if db.tx == nil {
			return Result{}, nil, errors.New("sql: no transaction open")
		}
		tx := db.tx
		db.tx = nil
		if err := tx.Commit(ctx); err != nil {
			return Result{}, nil, err
		}
		return Result{}, nil, nil
	case Rollback:
		if db.tx == nil {
			return Result{}, nil, errors.New("sql: no transaction open")
		}
		db.tx.Abort()
		db.tx = nil
		return Result{}, nil, nil
	}

	if db.tx != nil {
		// Inside an explicit transaction: no auto-retry (the snapshot is
		// pinned; the application owns conflict handling at COMMIT).
		return db.runStmt(ctx, db.tx, stmt, args)
	}

	// Auto-commit: one kv transaction per statement, retried on
	// conflict with jittered backoff (splits and write races are
	// expected and transient).
	var lastErr error
	for attempt := 0; attempt <= db.maxRetries; attempt++ {
		tx := db.c.Begin()
		res, rows, err := db.runStmt(ctx, tx, stmt, args)
		if err == nil {
			if cerr := tx.Commit(ctx); cerr == nil {
				return res, rows, nil
			} else {
				err = cerr
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, kv.ErrConflict) {
			return Result{}, nil, err
		}
		lastErr = err
		sleepJitter(attempt)
	}
	return Result{}, nil, fmt.Errorf("sql: giving up after %d conflicts: %w", db.maxRetries, lastErr)
}

func sleepJitter(attempt int) {
	base := time.Duration(1<<uint(min(attempt, 8))) * 100 * time.Microsecond
	time.Sleep(base + time.Duration(rand.Int63n(int64(base)+1)))
}

func (db *DB) runStmt(ctx context.Context, tx *kvclient.Tx, stmt Stmt, args []Value) (Result, *Rows, error) {
	switch st := stmt.(type) {
	case CreateTable:
		return Result{}, nil, db.cat.CreateTable(ctx, tx, st)
	case DropTable:
		return Result{}, nil, db.cat.DropTable(ctx, tx, st)
	case CreateIndex:
		return Result{}, nil, db.execCreateIndex(ctx, tx, st)
	case DropIndex:
		return Result{}, nil, db.cat.DropIndex(ctx, tx, st)
	case Insert:
		res, err := db.execInsert(ctx, tx, st, args)
		return res, nil, err
	case Update:
		res, err := db.execUpdate(ctx, tx, st, args)
		return res, nil, err
	case Delete:
		res, err := db.execDelete(ctx, tx, st, args)
		return res, nil, err
	case Select:
		rows, err := db.execSelect(ctx, tx, st, args)
		return Result{}, rows, err
	case Explain:
		rows, err := db.execExplain(ctx, tx, st)
		return Result{}, rows, err
	}
	return Result{}, nil, fmt.Errorf("sql: unhandled statement %T", stmt)
}

// rowKeyFor computes the storage key for a full row, allocating a rowid
// when the table has no declared primary key.
func (db *DB) rowKeyFor(table *Table, vals []Value) ([]byte, error) {
	s := table.Schema
	if s.PKCol >= 0 {
		pk := vals[s.PKCol]
		if pk.IsNull() {
			return nil, fmt.Errorf("sql: NULL primary key in %s", s.Name)
		}
		return EncodeKey(pk), nil
	}
	rowid := int64(db.c.NewOID(0).Local())
	return EncodeKey(Int(rowid)), nil
}

// indexEntryKey builds the index-tree key for a row: the encoded column
// value concatenated with the row key (making entries unique per row
// and range-scannable by value prefix).
func indexEntryKey(colVal Value, rowKey []byte) []byte {
	k := EncodeKey(colVal)
	out := make([]byte, 0, len(k)+len(rowKey))
	out = append(out, k...)
	return append(out, rowKey...)
}

// checkUnique verifies no index entry exists for value v.
func (db *DB) checkUnique(ctx context.Context, tx *kvclient.Tx, table *Table, idxPos int, v Value) error {
	is := table.Schema.Indexes[idxPos]
	if v.IsNull() {
		return nil // SQL: NULLs are exempt from UNIQUE
	}
	k := EncodeKey(v)
	cells, err := table.IndexTrees[idxPos].Scan(ctx, tx, k, 1)
	if err != nil {
		return err
	}
	if len(cells) > 0 && bytesCompare(cells[0].Key, KeySuccessor(k)) < 0 {
		return fmt.Errorf("sql: UNIQUE constraint failed: %s.%s", is.Table, is.Col)
	}
	return nil
}

// insertIndexEntries stages index entries for a new/updated row.
func (db *DB) insertIndexEntries(ctx context.Context, tx *kvclient.Tx, table *Table, rowKey []byte, vals []Value) error {
	for i, is := range table.Schema.Indexes {
		v := vals[is.ColIdx]
		if is.Unique {
			if err := db.checkUnique(ctx, tx, table, i, v); err != nil {
				return err
			}
		}
		if err := table.IndexTrees[i].Put(ctx, tx, indexEntryKey(v, rowKey), rowKey); err != nil {
			return err
		}
	}
	return nil
}

// deleteIndexEntries stages removal of a row's index entries.
func (db *DB) deleteIndexEntries(ctx context.Context, tx *kvclient.Tx, table *Table, rowKey []byte, vals []Value) error {
	for i, is := range table.Schema.Indexes {
		err := table.IndexTrees[i].Delete(ctx, tx, indexEntryKey(vals[is.ColIdx], rowKey))
		if err != nil && !errors.Is(err, dbt.ErrKeyNotFound) {
			return err
		}
	}
	return nil
}

func (db *DB) execInsert(ctx context.Context, tx *kvclient.Tx, st Insert, args []Value) (Result, error) {
	table, err := db.cat.GetTable(ctx, tx, st.Table)
	if err != nil {
		return Result{}, err
	}
	s := table.Schema

	// Map the statement's column list to schema positions.
	colPos := make([]int, 0, len(st.Cols))
	if len(st.Cols) == 0 {
		for i := range s.Cols {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range st.Cols {
			i := s.ColIndex(c)
			if i < 0 {
				return Result{}, fmt.Errorf("sql: no such column %s.%s", s.Name, c)
			}
			colPos = append(colPos, i)
		}
	}

	e := &env{params: args}
	var affected int64
	for _, rowExprs := range st.Rows {
		if len(rowExprs) != len(colPos) {
			return Result{}, fmt.Errorf("sql: %d values for %d columns", len(rowExprs), len(colPos))
		}
		vals := make([]Value, len(s.Cols))
		for j, x := range rowExprs {
			v, err := e.eval(x)
			if err != nil {
				return Result{}, err
			}
			cv, err := Coerce(v, s.Cols[colPos[j]].Type)
			if err != nil {
				return Result{}, err
			}
			vals[colPos[j]] = cv
		}
		for i, c := range s.Cols {
			if (c.NotNull || i == s.PKCol) && vals[i].IsNull() {
				return Result{}, fmt.Errorf("sql: NOT NULL constraint failed: %s.%s", s.Name, c.Name)
			}
		}
		rowKey, err := db.rowKeyFor(table, vals)
		if err != nil {
			return Result{}, err
		}
		if s.PKCol >= 0 {
			if _, err := table.Tree.Get(ctx, tx, rowKey); err == nil {
				return Result{}, fmt.Errorf("sql: UNIQUE constraint failed: %s.%s",
					s.Name, s.Cols[s.PKCol].Name)
			} else if !errors.Is(err, dbt.ErrKeyNotFound) {
				return Result{}, err
			}
		}
		if err := table.Tree.Put(ctx, tx, rowKey, EncodeRow(vals)); err != nil {
			return Result{}, err
		}
		if err := db.insertIndexEntries(ctx, tx, table, rowKey, vals); err != nil {
			return Result{}, err
		}
		affected++
	}
	return Result{RowsAffected: affected}, nil
}

type matchedRow struct {
	key []byte
	row []Value
}

// collectMatches gathers rows of table matching where (for UPDATE and
// DELETE; mutation happens after the scan so the scan's iterator does
// not chase its own writes).
func (db *DB) collectMatches(ctx context.Context, tx *kvclient.Tx, table *Table, alias string, where Expr, args []Value) ([]matchedRow, error) {
	conj := conjuncts(where, nil)
	path := planAccess(table, alias, conj, nil)
	e := &env{params: args}
	b := &binding{alias: alias, schema: table.Schema}
	e.bindings = []*binding{b}
	var out []matchedRow
	err := db.scanTable(ctx, tx, table, path, e, func(rowKey []byte, row []Value) (bool, error) {
		b.row = row
		if where != nil {
			v, err := e.eval(where)
			if err != nil {
				return false, err
			}
			if v.IsNull() || !v.Truthy() {
				return true, nil
			}
		}
		out = append(out, matchedRow{key: append([]byte(nil), rowKey...), row: row})
		return true, nil
	})
	return out, err
}

func (db *DB) execUpdate(ctx context.Context, tx *kvclient.Tx, st Update, args []Value) (Result, error) {
	table, err := db.cat.GetTable(ctx, tx, st.Table)
	if err != nil {
		return Result{}, err
	}
	s := table.Schema
	setPos := make([]int, len(st.Set))
	for i, set := range st.Set {
		p := s.ColIndex(set.Col)
		if p < 0 {
			return Result{}, fmt.Errorf("sql: no such column %s.%s", s.Name, set.Col)
		}
		setPos[i] = p
	}
	matches, err := db.collectMatches(ctx, tx, table, st.Table, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	e := &env{params: args}
	b := &binding{alias: st.Table, schema: s}
	e.bindings = []*binding{b}
	for _, m := range matches {
		b.row = m.row
		newVals := append([]Value(nil), m.row...)
		for i, set := range st.Set {
			v, err := e.eval(set.E)
			if err != nil {
				return Result{}, err
			}
			cv, err := Coerce(v, s.Cols[setPos[i]].Type)
			if err != nil {
				return Result{}, err
			}
			newVals[setPos[i]] = cv
		}
		for i, c := range s.Cols {
			if (c.NotNull || i == s.PKCol) && newVals[i].IsNull() {
				return Result{}, fmt.Errorf("sql: NOT NULL constraint failed: %s.%s", s.Name, c.Name)
			}
		}
		newKey := m.key
		pkChanged := false
		if s.PKCol >= 0 && Compare(m.row[s.PKCol], newVals[s.PKCol]) != 0 {
			pkChanged = true
			newKey = EncodeKey(newVals[s.PKCol])
		}
		if pkChanged {
			if _, err := table.Tree.Get(ctx, tx, newKey); err == nil {
				return Result{}, fmt.Errorf("sql: UNIQUE constraint failed: %s.%s", s.Name, s.Cols[s.PKCol].Name)
			} else if !errors.Is(err, dbt.ErrKeyNotFound) {
				return Result{}, err
			}
			if err := table.Tree.Delete(ctx, tx, m.key); err != nil {
				return Result{}, err
			}
		}
		if err := db.deleteIndexEntries(ctx, tx, table, m.key, m.row); err != nil {
			return Result{}, err
		}
		if err := table.Tree.Put(ctx, tx, newKey, EncodeRow(newVals)); err != nil {
			return Result{}, err
		}
		if err := db.insertIndexEntries(ctx, tx, table, newKey, newVals); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: int64(len(matches))}, nil
}

func (db *DB) execDelete(ctx context.Context, tx *kvclient.Tx, st Delete, args []Value) (Result, error) {
	table, err := db.cat.GetTable(ctx, tx, st.Table)
	if err != nil {
		return Result{}, err
	}
	matches, err := db.collectMatches(ctx, tx, table, st.Table, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	for _, m := range matches {
		if err := table.Tree.Delete(ctx, tx, m.key); err != nil && !errors.Is(err, dbt.ErrKeyNotFound) {
			return Result{}, err
		}
		if err := db.deleteIndexEntries(ctx, tx, table, m.key, m.row); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: int64(len(matches))}, nil
}

// execCreateIndex creates the index and backfills it from the table, all
// in one transaction.
func (db *DB) execCreateIndex(ctx context.Context, tx *kvclient.Tx, st CreateIndex) error {
	// Hold the pre-DDL table handle for the backfill scan.
	table, err := db.cat.GetTable(ctx, tx, st.Table)
	if err != nil {
		return err
	}
	is, err := db.cat.CreateIndex(ctx, tx, st)
	if err != nil || is == nil {
		return err
	}
	// Backfill: scan the table at this snapshot and stage entries into
	// the new tree. The tree root was staged in tx, so the backfill
	// writes see it and the whole DDL commits atomically.
	idxTree, err := dbt.OpenUnchecked(db.c, is.TreeID, db.cat.treeCfg)
	if err != nil {
		return err
	}
	defer idxTree.Close()
	cells, err := table.Tree.Scan(ctx, tx, nil, -1)
	if err != nil {
		return err
	}
	for _, cell := range cells {
		vals, err := DecodeRow(cell.Value)
		if err != nil {
			return err
		}
		v := vals[is.ColIdx]
		if err := idxTree.Put(ctx, tx, indexEntryKey(v, cell.Key), cell.Key); err != nil {
			return err
		}
	}
	if is.Unique {
		// Table scans come out in rowKey order, not value order, so
		// duplicates are detected on the freshly built index, where
		// equal values are adjacent. NULLs are exempt (SQL standard).
		idxCells, err := idxTree.Scan(ctx, tx, nil, -1)
		if err != nil {
			return err
		}
		nullPrefix := EncodeKey(Null)
		var prevPrefix []byte
		for _, c := range idxCells {
			prefix := c.Key[:len(c.Key)-len(c.Value)] // strip rowKey suffix
			if bytesCompare(prefix, nullPrefix) == 0 {
				continue
			}
			if prevPrefix != nil && bytesCompare(prefix, prevPrefix) == 0 {
				return fmt.Errorf("sql: UNIQUE constraint failed building index %s", is.Name)
			}
			prevPrefix = append(prevPrefix[:0], prefix...)
		}
	}
	return nil
}
