package sql_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"yesquel/internal/sql"
)

func TestThreeWayJoin(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE a (id INTEGER PRIMARY KEY, b_id INTEGER)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER PRIMARY KEY, c_id INTEGER)")
	mustExec(t, db, "CREATE TABLE c (id INTEGER PRIMARY KEY, name TEXT)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 10), (2, 20)")
	mustExec(t, db, "INSERT INTO b VALUES (10, 100), (20, 200)")
	mustExec(t, db, "INSERT INTO c VALUES (100, 'first'), (200, 'second')")
	got := rowsToString(mustQuery(t, db,
		`SELECT a.id, c.name FROM a
		 JOIN b ON b.id = a.b_id
		 JOIN c ON c.id = b.c_id
		 ORDER BY a.id`))
	if got != "1|first\n2|second\n" {
		t.Fatalf("%q", got)
	}
}

func TestJoinNoMatches(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE l (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "CREATE TABLE r (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO l VALUES (1)")
	// Inner join against an empty table yields nothing.
	if got := rowsToString(mustQuery(t, db, "SELECT * FROM l JOIN r ON r.id = l.id")); got != "" {
		t.Fatalf("%q", got)
	}
}

func TestAggregateOverEmptyGroups(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, v INTEGER)")
	// GROUP BY over an empty table: no rows (unlike the no-GROUP-BY
	// case which yields one).
	if got := rowsToString(mustQuery(t, db, "SELECT g, count(*) FROM t GROUP BY g")); got != "" {
		t.Fatalf("grouped empty: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*), sum(v), min(v) FROM t")); got != "0|NULL|NULL\n" {
		t.Fatalf("ungrouped empty: %q", got)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users HAVING count(*) > 3")); got != "5\n" {
		t.Fatalf("%q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users HAVING count(*) > 10")); got != "" {
		t.Fatalf("%q", got)
	}
}

func TestOrderByExpression(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	// Sort by a computed key: ages mod 7 are alice 30->2, bob 25->4,
	// carol 35->0, dave 25->4, erin 40->5; ties break by name.
	got := rowsToString(mustQuery(t, db, "SELECT name FROM users ORDER BY age % 7, name"))
	if got != "carol\nalice\nbob\ndave\nerin\n" {
		t.Fatalf("%q", got)
	}
}

func TestUpdateAllRowsNoWhere(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	res := mustExec(t, db, "UPDATE users SET age = 1")
	if res.RowsAffected != 5 {
		t.Fatalf("affected %d", res.RowsAffected)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT DISTINCT age FROM users")); got != "1\n" {
		t.Fatalf("%q", got)
	}
}

func TestDeleteEverythingThenReuse(t *testing.T) {
	db := newDB(t, 2)
	setupUsers(t, db)
	mustExec(t, db, "DELETE FROM users")
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM users")); got != "0\n" {
		t.Fatalf("%q", got)
	}
	mustExec(t, db, "INSERT INTO users VALUES (1, 'reborn', 1, 'x')")
	if got := rowsToString(mustQuery(t, db, "SELECT name FROM users")); got != "reborn\n" {
		t.Fatalf("%q", got)
	}
}

func TestBlobRoundTrip(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE b (id INTEGER PRIMARY KEY, data BLOB)")
	payload := []byte{0x00, 0xff, 0x10, 0x00, 'a'}
	mustExec(t, db, "INSERT INTO b VALUES (1, ?)", sql.Blob(payload))
	rows := mustQuery(t, db, "SELECT data FROM b WHERE id = 1")
	got := rows.All()[0][0]
	if got.T != sql.TypeBlob || string(got.B) != string(payload) {
		t.Fatalf("blob: %+v", got)
	}
	// Blob literal syntax.
	mustExec(t, db, "INSERT INTO b VALUES (2, x'deadbeef')")
	rows = mustQuery(t, db, "SELECT length(data) FROM b WHERE id = 2")
	if rows.All()[0][0].I != 4 {
		t.Fatalf("blob literal length: %v", rows.All()[0][0])
	}
}

func TestNegativeAndFloatKeys(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE n (id INTEGER PRIMARY KEY, v TEXT)")
	for _, id := range []int64{-100, -1, 0, 1, 100} {
		mustExec(t, db, "INSERT INTO n VALUES (?, ?)", sql.Int(id), sql.Text(fmt.Sprint(id)))
	}
	got := rowsToString(mustQuery(t, db, "SELECT id FROM n ORDER BY id"))
	if got != "-100\n-1\n0\n1\n100\n" {
		t.Fatalf("negative key order: %q", got)
	}
	if got := rowsToString(mustQuery(t, db, "SELECT v FROM n WHERE id < 0 ORDER BY id")); got != "-100\n-1\n" {
		t.Fatalf("negative range: %q", got)
	}

	mustExec(t, db, "CREATE TABLE f (x REAL PRIMARY KEY)")
	for _, x := range []float64{-2.5, -0.5, 0, 0.25, 3.75} {
		mustExec(t, db, "INSERT INTO f VALUES (?)", sql.Float(x))
	}
	if got := rowsToString(mustQuery(t, db, "SELECT x FROM f WHERE x >= -1 ORDER BY x")); got != "-0.5\n0\n0.25\n3.75\n" {
		t.Fatalf("float pk range: %q", got)
	}
}

func TestInPredicateUsesValues(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	got := rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE id IN (2, 4, 99) ORDER BY id"))
	if got != "bob\ndave\n" {
		t.Fatalf("%q", got)
	}
	got = rowsToString(mustQuery(t, db, "SELECT name FROM users WHERE id NOT IN (1, 2, 3, 4) ORDER BY id"))
	if got != "erin\n" {
		t.Fatalf("%q", got)
	}
}

func TestStringFunctionsInWhere(t *testing.T) {
	db := newDB(t, 1)
	setupUsers(t, db)
	got := rowsToString(mustQuery(t, db, "SELECT upper(name) FROM users WHERE length(name) = 4 ORDER BY name"))
	if got != "DAVE\nERIN\n" {
		t.Fatalf("%q", got)
	}
}

func TestSelfReferentialUpdate(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE acc (id INTEGER PRIMARY KEY, bal INTEGER)")
	mustExec(t, db, "INSERT INTO acc VALUES (1, 100), (2, 200)")
	mustExec(t, db, "UPDATE acc SET bal = bal * 2 + id")
	got := rowsToString(mustQuery(t, db, "SELECT bal FROM acc ORDER BY id"))
	if got != "201\n402\n" {
		t.Fatalf("%q", got)
	}
}

// TestIndexPathMatchesFullScan is a property test: any predicate must
// produce identical results whether answered through an index or a full
// scan, across random data.
func TestIndexPathMatchesFullScan(t *testing.T) {
	dbIdx := newDB(t, 2)  // with index
	dbScan := newDB(t, 2) // without
	rng := rand.New(rand.NewSource(31))

	for _, db := range []*sql.DB{dbIdx, dbScan} {
		mustExec(t, db, "CREATE TABLE d (id INTEGER PRIMARY KEY, cat INTEGER, score INTEGER)")
	}
	mustExec(t, dbIdx, "CREATE INDEX d_cat ON d (cat)")
	for i := 0; i < 300; i++ {
		cat, score := rng.Intn(10), rng.Intn(50)
		for _, db := range []*sql.DB{dbIdx, dbScan} {
			mustExec(t, db, "INSERT INTO d VALUES (?, ?, ?)",
				sql.Int(int64(i)), sql.Int(int64(cat)), sql.Int(int64(score)))
		}
	}
	queries := []string{
		"SELECT id FROM d WHERE cat = 3 ORDER BY id",
		"SELECT id FROM d WHERE cat = 3 AND score > 25 ORDER BY id",
		"SELECT count(*) FROM d WHERE cat >= 7",
		"SELECT cat, count(*) FROM d WHERE cat BETWEEN 2 AND 5 GROUP BY cat ORDER BY cat",
		"SELECT id FROM d WHERE cat = 99",
		"SELECT sum(score) FROM d WHERE cat < 2",
	}
	for _, q := range queries {
		a := rowsToString(mustQuery(t, dbIdx, q))
		b := rowsToString(mustQuery(t, dbScan, q))
		if a != b {
			t.Errorf("%s:\nindexed %q\nscanned %q", q, a, b)
		}
	}
	// Verify the index path is actually chosen on the indexed side.
	plan := rowsToString(mustQuery(t, dbIdx, "EXPLAIN SELECT id FROM d WHERE cat = 3"))
	if !strings.Contains(plan, "INDEX lookup") {
		t.Fatalf("index not used: %q", plan)
	}
}

func TestConcurrentSessionsSeparateTx(t *testing.T) {
	db1 := newDB(t, 1)
	setupUsers(t, db1)
	db2 := sql.NewDBWithCatalog(db1.Client(), db1.Catalog())

	// Session 2 opens a transaction; session 1's autocommit writes are
	// invisible inside it but visible after it ends.
	mustExec(t, db2, "BEGIN")
	mustQuery(t, db2, "SELECT count(*) FROM users") // pin snapshot
	mustExec(t, db1, "INSERT INTO users VALUES (50, 'zed', 1, 'x')")
	if got := rowsToString(mustQuery(t, db2, "SELECT count(*) FROM users")); got != "5\n" {
		t.Fatalf("snapshot leak: %q", got)
	}
	mustExec(t, db2, "COMMIT")
	if got := rowsToString(mustQuery(t, db2, "SELECT count(*) FROM users")); got != "6\n" {
		t.Fatalf("after commit: %q", got)
	}
}

func TestLimitEarlyTerminationCorrect(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE s (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "BEGIN")
	for i := 0; i < 300; i++ {
		mustExec(t, db, "INSERT INTO s VALUES (?)", sql.Int(int64(i)))
	}
	mustExec(t, db, "COMMIT")
	// LIMIT without ORDER BY stops the scan early but must return rows
	// in key order (the scan is ordered).
	got := rowsToString(mustQuery(t, db, "SELECT id FROM s LIMIT 5"))
	if got != "0\n1\n2\n3\n4\n" {
		t.Fatalf("%q", got)
	}
	got = rowsToString(mustQuery(t, db, "SELECT id FROM s WHERE id >= 100 LIMIT 3 OFFSET 2"))
	if got != "102\n103\n104\n" {
		t.Fatalf("%q", got)
	}
}

func TestWideRowsAndLongStrings(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, "CREATE TABLE w (id INTEGER PRIMARY KEY, a TEXT, b TEXT, c TEXT, d TEXT, e TEXT, f TEXT, g TEXT, h TEXT)")
	long := strings.Repeat("x", 10_000)
	mustExec(t, db, "INSERT INTO w VALUES (1, ?, ?, ?, ?, ?, ?, ?, ?)",
		sql.Text(long), sql.Text(long), sql.Text(long), sql.Text(long),
		sql.Text(long), sql.Text(long), sql.Text(long), sql.Text(long))
	rows := mustQuery(t, db, "SELECT length(a) + length(h) FROM w WHERE id = 1")
	if rows.All()[0][0].I != 20_000 {
		t.Fatalf("wide row: %v", rows.All()[0][0])
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	db := newDB(t, 1)
	mustExec(t, db, `CREATE TABLE "select_me" (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO "select_me" VALUES (7)`)
	if got := rowsToString(mustQuery(t, db, `SELECT id FROM "select_me"`)); got != "7\n" {
		t.Fatalf("%q", got)
	}
}

func TestManyStatementsOneExplicitTx(t *testing.T) {
	db := newDB(t, 2)
	mustExec(t, db, "CREATE TABLE batch (id INTEGER PRIMARY KEY, v INTEGER)")
	ctx := context.Background()
	mustExec(t, db, "BEGIN")
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO batch VALUES (?, ?)", sql.Int(int64(i)), sql.Int(int64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	// Read own writes mid-transaction.
	if got := rowsToString(mustQuery(t, db, "SELECT count(*) FROM batch")); got != "200\n" {
		t.Fatalf("own writes: %q", got)
	}
	mustExec(t, db, "COMMIT")
	if got := rowsToString(mustQuery(t, db, "SELECT sum(v) FROM batch WHERE id < 5")); got != "30\n" {
		t.Fatalf("%q", got)
	}
}
