package sql

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/wire"
)

// The catalog maps table and index names to their schemas and DBT tree
// ids. It lives in a reserved tree (CatalogTreeID), so DDL is just as
// transactional as DML: CREATE TABLE commits the schema row and the
// empty table tree in one distributed transaction.

// CatalogTreeID is the reserved tree id of the catalog.
const CatalogTreeID = 0

// firstUserTreeID is where allocated tree ids start.
const firstUserTreeID = 16

// Catalog key prefixes.
var (
	catKeyNextID = []byte("N")
	catKeyTable  = "T" // "T<name>"
	catKeyIndex  = "I" // "I<name>"
)

// TableSchema describes one table.
type TableSchema struct {
	Name   string
	TreeID uint64
	Cols   []ColDef
	// PKCol is the index into Cols of the declared primary key, or -1
	// when rows are keyed by a hidden rowid.
	PKCol   int
	Indexes []*IndexSchema
}

// IndexSchema describes one secondary index.
type IndexSchema struct {
	Name   string
	Table  string
	TreeID uint64
	Col    string // single-column indexes (the paper's workloads)
	ColIdx int
	Unique bool
}

// ColIndex returns the position of col in the schema, or -1.
func (ts *TableSchema) ColIndex(col string) int {
	for i, c := range ts.Cols {
		if c.Name == col {
			return i
		}
	}
	return -1
}

func encodeTableSchema(ts *TableSchema) []byte {
	b := wire.NewBuffer(64)
	b.PutString(ts.Name)
	b.PutUvarint(ts.TreeID)
	b.PutVarint(int64(ts.PKCol))
	b.PutUvarint(uint64(len(ts.Cols)))
	for _, c := range ts.Cols {
		b.PutString(c.Name)
		b.PutByte(byte(c.Type))
		b.PutBool(c.PrimaryKey)
		b.PutBool(c.NotNull)
	}
	return b.Bytes()
}

func decodeTableSchema(p []byte) (*TableSchema, error) {
	r := wire.NewReader(p)
	ts := &TableSchema{}
	var err error
	if ts.Name, err = r.String(); err != nil {
		return nil, err
	}
	if ts.TreeID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	pk, err := r.Varint()
	if err != nil {
		return nil, err
	}
	ts.PKCol = int(pk)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var c ColDef
		if c.Name, err = r.String(); err != nil {
			return nil, err
		}
		t, err := r.Byte()
		if err != nil {
			return nil, err
		}
		c.Type = Type(t)
		if c.PrimaryKey, err = r.Bool(); err != nil {
			return nil, err
		}
		if c.NotNull, err = r.Bool(); err != nil {
			return nil, err
		}
		ts.Cols = append(ts.Cols, c)
	}
	return ts, nil
}

func encodeIndexSchema(is *IndexSchema) []byte {
	b := wire.NewBuffer(64)
	b.PutString(is.Name)
	b.PutString(is.Table)
	b.PutUvarint(is.TreeID)
	b.PutString(is.Col)
	b.PutVarint(int64(is.ColIdx))
	b.PutBool(is.Unique)
	return b.Bytes()
}

func decodeIndexSchema(p []byte) (*IndexSchema, error) {
	r := wire.NewReader(p)
	is := &IndexSchema{}
	var err error
	if is.Name, err = r.String(); err != nil {
		return nil, err
	}
	if is.Table, err = r.String(); err != nil {
		return nil, err
	}
	if is.TreeID, err = r.Uvarint(); err != nil {
		return nil, err
	}
	if is.Col, err = r.String(); err != nil {
		return nil, err
	}
	ci, err := r.Varint()
	if err != nil {
		return nil, err
	}
	is.ColIdx = int(ci)
	if is.Unique, err = r.Bool(); err != nil {
		return nil, err
	}
	return is, nil
}

// Table is a runtime handle: schema plus open tree handles.
type Table struct {
	Schema *TableSchema
	Tree   *dbt.Tree
	// IndexTrees is parallel to Schema.Indexes.
	IndexTrees []*dbt.Tree
}

// Catalog caches schemas and open tree handles for one client. Schemas
// are invalidated on DDL through this catalog; concurrent DDL from
// other clients is detected lazily (a vanished tree surfaces as
// ErrTreeNotFound and drops the cache entry).
type Catalog struct {
	c       *kvclient.Client
	treeCfg dbt.Config

	mu     sync.Mutex
	cat    *dbt.Tree // catalog tree handle
	tables map[string]*Table
}

// NewCatalog returns a catalog for the client. treeCfg configures the
// DBT handles the catalog opens (tests use small MaxCells).
func NewCatalog(c *kvclient.Client, treeCfg dbt.Config) *Catalog {
	return &Catalog{c: c, treeCfg: treeCfg, tables: make(map[string]*Table)}
}

// Close releases all tree handles (stopping their splitters).
func (cat *Catalog) Close() {
	cat.mu.Lock()
	defer cat.mu.Unlock()
	if cat.cat != nil {
		cat.cat.Close()
	}
	for _, t := range cat.tables {
		t.Tree.Close()
		for _, it := range t.IndexTrees {
			it.Close()
		}
	}
	cat.tables = make(map[string]*Table)
}

// Ensure bootstraps the catalog tree. It must run before a statement's
// transaction takes its snapshot: creating the tree commits in its own
// transaction, and a snapshot taken earlier would not see the root.
func (cat *Catalog) Ensure(ctx context.Context) error {
	_, err := cat.catalogTree(ctx)
	return err
}

// catalogTree opens (or creates) the catalog tree.
func (cat *Catalog) catalogTree(ctx context.Context) (*dbt.Tree, error) {
	cat.mu.Lock()
	defer cat.mu.Unlock()
	return cat.catalogTreeLocked(ctx)
}

func (cat *Catalog) catalogTreeLocked(ctx context.Context) (*dbt.Tree, error) {
	if cat.cat != nil {
		return cat.cat, nil
	}
	t, err := dbt.Open(ctx, cat.c, CatalogTreeID, cat.treeCfg)
	if errors.Is(err, dbt.ErrTreeNotFound) {
		t, err = dbt.Create(ctx, cat.c, CatalogTreeID, cat.treeCfg)
		// A concurrent bootstrap can beat us; fall back to Open.
		if err != nil {
			t, err = dbt.Open(ctx, cat.c, CatalogTreeID, cat.treeCfg)
		}
	}
	if err != nil {
		return nil, err
	}
	cat.cat = t
	return t, nil
}

// allocTreeID transactionally allocates n fresh tree ids within tx.
func (cat *Catalog) allocTreeID(ctx context.Context, tx *kvclient.Tx, n uint64) (uint64, error) {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return 0, err
	}
	var next uint64 = firstUserTreeID
	raw, err := ct.Get(ctx, tx, catKeyNextID)
	if err == nil {
		vals, derr := DecodeRow(raw)
		if derr != nil || len(vals) != 1 {
			return 0, fmt.Errorf("sql: corrupt tree-id counter")
		}
		next = uint64(vals[0].I)
	} else if !errors.Is(err, dbt.ErrKeyNotFound) {
		return 0, err
	}
	if err := ct.Put(ctx, tx, catKeyNextID, EncodeRow([]Value{Int(int64(next + n))})); err != nil {
		return 0, err
	}
	return next, nil
}

// GetTable returns the runtime handle for name, reading the catalog at
// tx's snapshot on a cache miss.
func (cat *Catalog) GetTable(ctx context.Context, tx *kvclient.Tx, name string) (*Table, error) {
	cat.mu.Lock()
	if t, ok := cat.tables[name]; ok {
		cat.mu.Unlock()
		return t, nil
	}
	cat.mu.Unlock()

	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return nil, err
	}
	raw, err := ct.Get(ctx, tx, []byte(catKeyTable+name))
	if errors.Is(err, dbt.ErrKeyNotFound) {
		return nil, fmt.Errorf("sql: no such table: %s", name)
	}
	if err != nil {
		return nil, err
	}
	ts, err := decodeTableSchema(raw)
	if err != nil {
		return nil, err
	}
	// Load the table's indexes: scan the index namespace and keep those
	// pointing at this table. The catalog is small; the scan is cheap.
	cells, err := ct.Scan(ctx, tx, []byte(catKeyIndex), -1)
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		if len(cell.Key) == 0 || cell.Key[0] != catKeyIndex[0] {
			break
		}
		is, err := decodeIndexSchema(cell.Value)
		if err != nil {
			return nil, err
		}
		if is.Table == name {
			ts.Indexes = append(ts.Indexes, is)
		}
	}

	// Trees open unchecked: their roots were committed with the schema
	// (or staged in the caller's own transaction for in-tx DDL).
	table := &Table{Schema: ts}
	if table.Tree, err = dbt.OpenUnchecked(cat.c, ts.TreeID, cat.treeCfg); err != nil {
		return nil, fmt.Errorf("sql: opening tree of table %s: %w", name, err)
	}
	for _, is := range ts.Indexes {
		it, err := dbt.OpenUnchecked(cat.c, is.TreeID, cat.treeCfg)
		if err != nil {
			table.Tree.Close()
			return nil, fmt.Errorf("sql: opening tree of index %s: %w", is.Name, err)
		}
		table.IndexTrees = append(table.IndexTrees, it)
	}

	cat.mu.Lock()
	if existing, ok := cat.tables[name]; ok {
		cat.mu.Unlock()
		table.Tree.Close()
		for _, it := range table.IndexTrees {
			it.Close()
		}
		return existing, nil
	}
	cat.tables[name] = table
	cat.mu.Unlock()
	return table, nil
}

// ListTables returns the schemas of all tables, read at tx's snapshot.
func (cat *Catalog) ListTables(ctx context.Context, tx *kvclient.Tx) ([]*TableSchema, error) {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return nil, err
	}
	cells, err := ct.Scan(ctx, tx, []byte(catKeyTable), -1)
	if err != nil {
		return nil, err
	}
	var out []*TableSchema
	for _, cell := range cells {
		if len(cell.Key) == 0 || cell.Key[0] != catKeyTable[0] {
			break
		}
		ts, err := decodeTableSchema(cell.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

// ListIndexes returns the schemas of all indexes, read at tx's snapshot.
func (cat *Catalog) ListIndexes(ctx context.Context, tx *kvclient.Tx) ([]*IndexSchema, error) {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return nil, err
	}
	cells, err := ct.Scan(ctx, tx, []byte(catKeyIndex), -1)
	if err != nil {
		return nil, err
	}
	var out []*IndexSchema
	for _, cell := range cells {
		if len(cell.Key) == 0 || cell.Key[0] != catKeyIndex[0] {
			break
		}
		is, err := decodeIndexSchema(cell.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, is)
	}
	return out, nil
}

// Invalidate drops the cached handle for name (after DDL).
func (cat *Catalog) Invalidate(name string) {
	cat.mu.Lock()
	if t, ok := cat.tables[name]; ok {
		t.Tree.Close()
		for _, it := range t.IndexTrees {
			it.Close()
		}
		delete(cat.tables, name)
	}
	cat.mu.Unlock()
}

// CreateTable writes the schema and creates the table tree within tx.
func (cat *Catalog) CreateTable(ctx context.Context, tx *kvclient.Tx, st CreateTable) error {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return err
	}
	key := []byte(catKeyTable + st.Name)
	if _, err := ct.Get(ctx, tx, key); err == nil {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %s already exists", st.Name)
	} else if !errors.Is(err, dbt.ErrKeyNotFound) {
		return err
	}

	ts := &TableSchema{Name: st.Name, PKCol: -1, Cols: st.Cols}
	seen := make(map[string]bool)
	for i, c := range st.Cols {
		if seen[c.Name] {
			return fmt.Errorf("sql: duplicate column %s", c.Name)
		}
		seen[c.Name] = true
		if c.PrimaryKey {
			if ts.PKCol >= 0 {
				return fmt.Errorf("sql: multiple primary keys in %s", st.Name)
			}
			ts.PKCol = i
		}
	}
	id, err := cat.allocTreeID(ctx, tx, 1)
	if err != nil {
		return err
	}
	ts.TreeID = id
	if err := ct.Put(ctx, tx, key, encodeTableSchema(ts)); err != nil {
		return err
	}
	// Create the table tree inside the same transaction: tree roots are
	// plain kv objects, so this is atomic with the schema write.
	return createTreeRootInTx(tx, cat.c, id)
}

// createTreeRootInTx stages the root node of a fresh tree in tx,
// mirroring dbt.Create but inside an enclosing transaction.
func createTreeRootInTx(tx *kvclient.Tx, c *kvclient.Client, id uint64) error {
	root := kv.NewSuper()
	root.Attrs[dbt.AttrHeight] = 0
	root.Attrs[dbt.AttrTree] = id
	root.LowKey = []byte{}
	root.HighKey = nil
	tx.Put(dbt.RootOID(id, c.NumServers()), root)
	return nil
}

// DropTable removes the schema, its indexes, and marks the trees dead.
func (cat *Catalog) DropTable(ctx context.Context, tx *kvclient.Tx, st DropTable) error {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return err
	}
	key := []byte(catKeyTable + st.Name)
	raw, err := ct.Get(ctx, tx, key)
	if errors.Is(err, dbt.ErrKeyNotFound) {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("sql: no such table: %s", st.Name)
	}
	if err != nil {
		return err
	}
	ts, err := decodeTableSchema(raw)
	if err != nil {
		return err
	}
	if err := ct.Delete(ctx, tx, key); err != nil {
		return err
	}
	tx.Delete(dbt.RootOID(ts.TreeID, cat.c.NumServers()))
	// Drop dependent indexes.
	cells, err := ct.Scan(ctx, tx, []byte(catKeyIndex), -1)
	if err != nil {
		return err
	}
	for _, cell := range cells {
		if len(cell.Key) == 0 || cell.Key[0] != catKeyIndex[0] {
			break
		}
		is, derr := decodeIndexSchema(cell.Value)
		if derr != nil {
			return derr
		}
		if is.Table == st.Name {
			if err := ct.Delete(ctx, tx, cell.Key); err != nil {
				return err
			}
			tx.Delete(dbt.RootOID(is.TreeID, cat.c.NumServers()))
		}
	}
	cat.Invalidate(st.Name)
	return nil
}

// CreateIndex writes the index schema, creates its tree, and backfills
// it from the table within tx.
func (cat *Catalog) CreateIndex(ctx context.Context, tx *kvclient.Tx, st CreateIndex) (*IndexSchema, error) {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return nil, err
	}
	if len(st.Cols) != 1 {
		return nil, fmt.Errorf("sql: only single-column indexes are supported")
	}
	key := []byte(catKeyIndex + st.Name)
	if _, err := ct.Get(ctx, tx, key); err == nil {
		if st.IfNotExists {
			return nil, nil
		}
		return nil, fmt.Errorf("sql: index %s already exists", st.Name)
	} else if !errors.Is(err, dbt.ErrKeyNotFound) {
		return nil, err
	}
	table, err := cat.GetTable(ctx, tx, st.Table)
	if err != nil {
		return nil, err
	}
	colIdx := table.Schema.ColIndex(st.Cols[0])
	if colIdx < 0 {
		return nil, fmt.Errorf("sql: no such column %s.%s", st.Table, st.Cols[0])
	}
	id, err := cat.allocTreeID(ctx, tx, 1)
	if err != nil {
		return nil, err
	}
	is := &IndexSchema{Name: st.Name, Table: st.Table, TreeID: id, Col: st.Cols[0], ColIdx: colIdx, Unique: st.Unique}
	if err := ct.Put(ctx, tx, key, encodeIndexSchema(is)); err != nil {
		return nil, err
	}
	if err := createTreeRootInTx(tx, cat.c, id); err != nil {
		return nil, err
	}
	cat.Invalidate(st.Table)
	return is, nil
}

// DropIndex removes the index schema and tree root.
func (cat *Catalog) DropIndex(ctx context.Context, tx *kvclient.Tx, st DropIndex) error {
	ct, err := cat.catalogTree(ctx)
	if err != nil {
		return err
	}
	key := []byte(catKeyIndex + st.Name)
	raw, err := ct.Get(ctx, tx, key)
	if errors.Is(err, dbt.ErrKeyNotFound) {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("sql: no such index: %s", st.Name)
	}
	if err != nil {
		return err
	}
	is, err := decodeIndexSchema(raw)
	if err != nil {
		return err
	}
	if err := ct.Delete(ctx, tx, key); err != nil {
		return err
	}
	tx.Delete(dbt.RootOID(is.TreeID, cat.c.NumServers()))
	cat.Invalidate(is.Table)
	return nil
}
