package sql

import (
	"context"
	"fmt"

	"yesquel/internal/dbt"
	"yesquel/internal/kv/kvclient"
)

// Access-path planning. The planner is deliberately modest — Web
// workloads are point lookups, short range scans, and small joins — but
// it picks the three access paths that matter:
//
//	pkEq:     WHERE pk = e        -> one DBT Get
//	pkRange:  WHERE pk <op> e ... -> bounded DBT scan
//	idxEq/idxRange: predicates on an indexed column -> bounded scan of
//	          the index tree, then row fetches by primary key
//	full:     everything else    -> full table scan
//
// The full WHERE clause is always re-evaluated on each row, so access
// paths are pure optimizations and cannot change results.

type pathKind uint8

const (
	pathFull pathKind = iota
	pathPKEq
	pathPKRange
	pathIdxEq
	pathIdxRange
)

type bound struct {
	e    Expr
	incl bool
}

type accessPath struct {
	kind pathKind
	idx  int // position in Schema.Indexes for idx paths
	eq   Expr
	lo   *bound
	hi   *bound
}

// conjuncts flattens nested ANDs.
func conjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(BinOp); ok && b.Op == "and" {
		out = conjuncts(b.L, out)
		return conjuncts(b.R, out)
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// refsOnly reports whether e references columns only through the given
// aliases (i.e. it can be evaluated before scanning the planned table).
func refsOnly(e Expr, allowed map[string]bool) bool {
	switch t := e.(type) {
	case Lit, Param:
		return true
	case ColRef:
		// An unqualified column could belong to the planned table;
		// only qualified refs to outer tables are safely evaluable.
		return t.Table != "" && allowed[t.Table]
	case BinOp:
		return refsOnly(t.L, allowed) && refsOnly(t.R, allowed)
	case UnOp:
		return refsOnly(t.E, allowed)
	case IsNull:
		return refsOnly(t.E, allowed)
	case Between:
		return refsOnly(t.E, allowed) && refsOnly(t.Lo, allowed) && refsOnly(t.Hi, allowed)
	case InList:
		if !refsOnly(t.E, allowed) {
			return false
		}
		for _, le := range t.List {
			if !refsOnly(le, allowed) {
				return false
			}
		}
		return true
	case Call:
		for _, a := range t.Args {
			if !refsOnly(a, allowed) {
				return false
			}
		}
		return true
	}
	return false
}

// colPredicate matches a conjunct of the form <col> <op> <expr> or
// <expr> <op> <col> where col belongs to the table being planned
// (alias) and expr is evaluable from outer bindings.
func colPredicate(e Expr, alias string, schema *TableSchema, outer map[string]bool) (col string, op string, rhs Expr, ok bool) {
	b, isBin := e.(BinOp)
	if !isBin {
		return "", "", nil, false
	}
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", "", nil, false
	}
	try := func(l, r Expr, op string) (string, string, Expr, bool) {
		c, isCol := l.(ColRef)
		if !isCol {
			return "", "", nil, false
		}
		if c.Table != "" && c.Table != alias {
			return "", "", nil, false
		}
		if schema.ColIndex(c.Col) < 0 {
			return "", "", nil, false
		}
		if !refsOnly(r, outer) {
			return "", "", nil, false
		}
		return c.Col, op, r, true
	}
	if c, op2, r, ok2 := try(b.L, b.R, b.Op); ok2 {
		return c, op2, r, true
	}
	// Mirror: expr <op> col.
	mirror := map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
	if c, op2, r, ok2 := try(b.R, b.L, mirror[b.Op]); ok2 {
		return c, op2, r, true
	}
	return "", "", nil, false
}

// planAccess chooses the access path for a table given the WHERE/ON
// conjuncts and the set of already-bound (outer) aliases.
func planAccess(table *Table, alias string, conj []Expr, outer map[string]bool) accessPath {
	schema := table.Schema
	pkName := ""
	if schema.PKCol >= 0 {
		pkName = schema.Cols[schema.PKCol].Name
	}
	type colBounds struct {
		eq     Expr
		lo, hi *bound
	}
	byCol := make(map[string]*colBounds)
	for _, c := range conj {
		col, op, rhs, ok := colPredicate(c, alias, schema, outer)
		if !ok {
			continue
		}
		cb := byCol[col]
		if cb == nil {
			cb = &colBounds{}
			byCol[col] = cb
		}
		switch op {
		case "=":
			cb.eq = rhs
		case ">":
			cb.lo = &bound{e: rhs}
		case ">=":
			cb.lo = &bound{e: rhs, incl: true}
		case "<":
			cb.hi = &bound{e: rhs}
		case "<=":
			cb.hi = &bound{e: rhs, incl: true}
		}
	}
	// Also treat BETWEEN as a range.
	for _, c := range conj {
		bt, ok := c.(Between)
		if !ok || bt.Not {
			continue
		}
		cr, ok := bt.E.(ColRef)
		if !ok || (cr.Table != "" && cr.Table != alias) || schema.ColIndex(cr.Col) < 0 {
			continue
		}
		if !refsOnly(bt.Lo, outer) || !refsOnly(bt.Hi, outer) {
			continue
		}
		cb := byCol[cr.Col]
		if cb == nil {
			cb = &colBounds{}
			byCol[cr.Col] = cb
		}
		if cb.lo == nil {
			cb.lo = &bound{e: bt.Lo, incl: true}
		}
		if cb.hi == nil {
			cb.hi = &bound{e: bt.Hi, incl: true}
		}
	}

	// Primary key first: it avoids the extra index hop.
	if pkName != "" {
		if cb := byCol[pkName]; cb != nil {
			if cb.eq != nil {
				return accessPath{kind: pathPKEq, eq: cb.eq}
			}
			if cb.lo != nil || cb.hi != nil {
				return accessPath{kind: pathPKRange, lo: cb.lo, hi: cb.hi}
			}
		}
	}
	for i, is := range schema.Indexes {
		if cb := byCol[is.Col]; cb != nil {
			if cb.eq != nil {
				return accessPath{kind: pathIdxEq, idx: i, eq: cb.eq}
			}
			if cb.lo != nil || cb.hi != nil {
				return accessPath{kind: pathIdxRange, idx: i, lo: cb.lo, hi: cb.hi}
			}
		}
	}
	return accessPath{kind: pathFull}
}

// rowVisitor receives each fetched row; returning false stops the scan.
type rowVisitor func(rowKey []byte, row []Value) (bool, error)

// keyRange evaluates the path's bounds into encoded key bounds for a
// key column of declared type ct. ok=false means the bound expression
// could not be coerced; the caller falls back to a full scan.
func evalKeyBounds(e *env, path accessPath, ct Type) (lo, hi []byte, ok bool, err error) {
	if path.eq != nil {
		v, err := e.eval(path.eq)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			// col = NULL matches nothing; empty range.
			return []byte{}, []byte{}, true, nil
		}
		cv, cerr := Coerce(v, ct)
		if cerr != nil {
			return nil, nil, false, nil
		}
		k := EncodeKey(cv)
		return k, KeySuccessor(k), true, nil
	}
	if path.lo != nil {
		v, err := e.eval(path.lo.e)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return []byte{}, []byte{}, true, nil
		}
		cv, cerr := Coerce(v, ct)
		if cerr != nil {
			return nil, nil, false, nil
		}
		k := EncodeKey(cv)
		if path.lo.incl {
			lo = k
		} else {
			lo = KeySuccessor(k)
		}
	}
	if path.hi != nil {
		v, err := e.eval(path.hi.e)
		if err != nil {
			return nil, nil, false, err
		}
		if v.IsNull() {
			return []byte{}, []byte{}, true, nil
		}
		cv, cerr := Coerce(v, ct)
		if cerr != nil {
			return nil, nil, false, nil
		}
		k := EncodeKey(cv)
		if path.hi.incl {
			hi = KeySuccessor(k)
		} else {
			hi = k
		}
	}
	return lo, hi, true, nil
}

// scanTable drives the chosen access path, invoking visit for each row.
func (db *DB) scanTable(ctx context.Context, tx *kvclient.Tx, table *Table, path accessPath, e *env, visit rowVisitor) error {
	schema := table.Schema
	switch path.kind {
	case pathPKEq, pathPKRange:
		ct := schema.Cols[schema.PKCol].Type
		lo, hi, ok, err := evalKeyBounds(e, path, ct)
		if err != nil {
			return err
		}
		if ok {
			return db.scanTreeRange(ctx, tx, table.Tree, lo, hi, func(key, val []byte) (bool, error) {
				row, err := DecodeRow(val)
				if err != nil {
					return false, err
				}
				return visit(key, row)
			})
		}
	case pathIdxEq, pathIdxRange:
		is := schema.Indexes[path.idx]
		ct := schema.Cols[is.ColIdx].Type
		lo, hi, ok, err := evalKeyBounds(e, path, ct)
		if err != nil {
			return err
		}
		if ok {
			idxTree := table.IndexTrees[path.idx]
			// Gather matching row keys in chunks and fetch the rows with
			// one batched read per chunk (dbt.GetBatch): the index scan
			// stays pipelined, and the row lookups shed their
			// round-trip-per-row cost.
			const rowBatch = 64
			keys := make([][]byte, 0, rowBatch)
			flush := func() (bool, error) {
				if len(keys) == 0 {
					return true, nil
				}
				rows, err := table.Tree.GetBatch(ctx, tx, keys)
				if err != nil {
					return false, err
				}
				for i, raw := range rows {
					if raw == nil {
						return false, fmt.Errorf("sql: index %s points at missing row", is.Name)
					}
					row, err := DecodeRow(raw)
					if err != nil {
						return false, err
					}
					cont, err := visit(keys[i], row)
					if err != nil || !cont {
						return cont, err
					}
				}
				keys = keys[:0]
				return true, nil
			}
			if err := db.scanTreeRange(ctx, tx, idxTree, lo, hi, func(_, rowKey []byte) (bool, error) {
				keys = append(keys, rowKey)
				if len(keys) == rowBatch {
					return flush()
				}
				return true, nil
			}); err != nil {
				return err
			}
			_, err := flush()
			return err
		}
	}
	// Full scan.
	return db.scanTreeRange(ctx, tx, table.Tree, nil, nil, func(key, val []byte) (bool, error) {
		row, err := DecodeRow(val)
		if err != nil {
			return false, err
		}
		return visit(key, row)
	})
}

// scanTreeRange iterates tree cells with keys in [lo, hi); nil bounds
// are unbounded.
func (db *DB) scanTreeRange(ctx context.Context, tx *kvclient.Tx, tree *dbt.Tree, lo, hi []byte, visit func(key, val []byte) (bool, error)) error {
	it := tree.NewIterator(ctx, tx, lo)
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if hi != nil && bytesCompare(it.Key(), hi) >= 0 {
			break
		}
		cont, err := visit(it.Key(), it.Value())
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return it.Err()
}
