package sql

import (
	"encoding/hex"
	"fmt"
	"strconv"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSym, ";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

type parser struct {
	toks   []token
	pos    int
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

// acceptKw consumes a keyword.
func (p *parser) acceptKw(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokInt: "integer"}[kind]
	}
	return t, fmt.Errorf("sql: expected %s, got %s", want, t)
}

func (p *parser) expectKw(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	// Allow non-reserved keywords (count, key, ...) as identifiers in
	// easy positions? Keep strict: identifiers only.
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", fmt.Errorf("sql: expected identifier, got %s", t)
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sql: expected statement, got %s", t)
	}
	switch t.text {
	case "explain":
		p.next()
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case Select, Update, Delete:
			return Explain{Stmt: inner}, nil
		}
		return nil, fmt.Errorf("sql: EXPLAIN supports SELECT, UPDATE, and DELETE")
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "insert":
		return p.parseInsert()
	case "select":
		return p.parseSelect()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	case "begin":
		p.next()
		p.acceptKw("transaction")
		return Begin{}, nil
	case "commit":
		p.next()
		return Commit{}, nil
	case "rollback":
		p.next()
		return Rollback{}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %s", t)
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // create
	unique := p.acceptKw("unique")
	switch {
	case p.acceptKw("table"):
		if unique {
			return nil, fmt.Errorf("sql: UNIQUE TABLE is not a thing")
		}
		return p.parseCreateTable()
	case p.acceptKw("index"):
		return p.parseCreateIndex(unique)
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE, got %s", p.cur())
}

func (p *parser) parseIfNotExists() bool {
	if p.cur().kind == tokKeyword && p.cur().text == "if" {
		p.next()
		p.acceptKw("not")
		p.acceptKw("exists")
		return true
	}
	return false
}

func (p *parser) parseCreateTable() (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSym, "("); err != nil {
		return nil, err
	}
	st := CreateTable{Name: name, IfNotExists: ine}
	for {
		col, err := p.parseColDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if p.accept(tokSym, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSym, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColDef() (ColDef, error) {
	var cd ColDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	t := p.cur()
	if t.kind != tokKeyword {
		return cd, fmt.Errorf("sql: expected column type, got %s", t)
	}
	switch t.text {
	case "integer", "int":
		cd.Type = TypeInt
	case "real", "float":
		cd.Type = TypeFloat
	case "text", "varchar":
		cd.Type = TypeText
	case "blob":
		cd.Type = TypeBlob
	default:
		return cd, fmt.Errorf("sql: unknown column type %s", t)
	}
	p.next()
	// VARCHAR(255)-style size, ignored.
	if p.accept(tokSym, "(") {
		if _, err := p.expect(tokInt, ""); err != nil {
			return cd, err
		}
		if _, err := p.expect(tokSym, ")"); err != nil {
			return cd, err
		}
	}
	for {
		switch {
		case p.acceptKw("primary"):
			if err := p.expectKw("key"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.acceptKw("not"):
			if err := p.expectKw("null"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (Stmt, error) {
	ine := p.parseIfNotExists()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSym, "("); err != nil {
		return nil, err
	}
	st := CreateIndex{Name: name, Table: table, Unique: unique, IfNotExists: ine}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if p.accept(tokSym, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSym, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.next() // drop
	switch {
	case p.acceptKw("table"):
		ie := p.parseIfExists()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return DropTable{Name: name, IfExists: ie}, nil
	case p.acceptKw("index"):
		ie := p.parseIfExists()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return DropIndex{Name: name, IfExists: ie}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after DROP")
}

func (p *parser) parseIfExists() bool {
	if p.cur().kind == tokKeyword && p.cur().text == "if" {
		p.next()
		p.acceptKw("exists")
		return true
	}
	return false
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // insert
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := Insert{Table: table}
	if p.accept(tokSym, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSym, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSym, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSym, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(tokSym, ",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	p.next() // select
	st := Select{}
	st.Distinct = p.acceptKw("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tokSym, ",") {
			continue
		}
		break
	}
	if p.acceptKw("from") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = &tr
		for {
			inner := p.acceptKw("inner")
			if !p.acceptKw("join") {
				if inner {
					return nil, fmt.Errorf("sql: expected JOIN after INNER")
				}
				break
			}
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, Join{Right: right, On: on})
		}
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("limit") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
		if p.acceptKw("offset") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Offset = e
		}
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// *, table.*
	if p.accept(tokSym, "*") {
		return SelectItem{E: Star{}}, nil
	}
	if p.cur().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSym && p.toks[p.pos+2].text == "*" {
		table := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{E: Star{Table: table}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.cur().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKw("as") {
		alias, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = alias
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.next() // update
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	st := Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSym, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, struct {
			Col string
			E   Expr
		}{col, e})
		if p.accept(tokSym, ",") {
			continue
		}
		break
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.next() // delete
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := Delete{Table: table}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("is") {
		not := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return IsNull{E: l, Not: not}, nil
	}
	notIn := false
	if p.cur().kind == tokKeyword && p.cur().text == "not" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "in" || p.toks[p.pos+1].text == "between" || p.toks[p.pos+1].text == "like") {
		p.next()
		notIn = true
	}
	if p.acceptKw("in") {
		if _, err := p.expect(tokSym, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSym, ")"); err != nil {
			return nil, err
		}
		return InList{E: l, List: list, Not: notIn}, nil
	}
	if p.acceptKw("between") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Between{E: l, Lo: lo, Hi: hi, Not: notIn}, nil
	}
	if p.acceptKw("like") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(BinOp{Op: "like", L: l, R: r})
		if notIn {
			e = UnOp{Op: "not", E: e}
		}
		return e, nil
	}
	t := p.cur()
	if t.kind == tokSym {
		switch t.text {
		case "=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinOp{Op: t.text, L: l, R: r}, nil
		case "!=", "<>":
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinOp{Op: "!=", L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSym && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSym && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSym, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnOp{Op: "-", E: e}, nil
	}
	if p.accept(tokSym, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q", t.text)
		}
		return Lit{V: Int(i)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Lit{V: Float(f)}, nil
	case tokString:
		p.next()
		return Lit{V: Text(t.text)}, nil
	case tokBlob:
		p.next()
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, fmt.Errorf("sql: bad blob literal")
		}
		return Lit{V: Blob(b)}, nil
	case tokParam:
		p.next()
		n := p.params
		p.params++
		return Param{N: n}, nil
	case tokKeyword:
		switch t.text {
		case "null":
			p.next()
			return Lit{V: Null}, nil
		case "count", "sum", "avg", "min", "max":
			return p.parseCall(t.text)
		case "not":
			p.next()
			e, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			return UnOp{Op: "not", E: e}, nil
		}
		return nil, fmt.Errorf("sql: unexpected %s in expression", t)
	case tokIdent:
		// function call or column ref
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSym && p.toks[p.pos+1].text == "(" {
			return p.parseCall(t.text)
		}
		p.next()
		if p.accept(tokSym, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.text, Col: col}, nil
		}
		return ColRef{Col: t.text}, nil
	case tokSym:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSym, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}

func (p *parser) parseCall(fn string) (Expr, error) {
	p.next() // name
	if _, err := p.expect(tokSym, "("); err != nil {
		return nil, err
	}
	call := Call{Fn: fn}
	if fn == "count" && p.accept(tokSym, "*") {
		call.Star = true
		if _, err := p.expect(tokSym, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	call.Distinct = p.acceptKw("distinct")
	if !p.accept(tokSym, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if p.accept(tokSym, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSym, ")"); err != nil {
			return nil, err
		}
	}
	return call, nil
}
