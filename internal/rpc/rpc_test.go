package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer launches s on an ephemeral port and returns its address
// and a cleanup function.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

func TestCallEcho(t *testing.T) {
	s := NewServer()
	s.Register("echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	addr := startServer(t, s)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, payload := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("ab"), 4096)} {
		got, err := c.Call(context.Background(), "echo", payload)
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("echo mismatch: got %d bytes want %d", len(got), len(payload))
		}
	}
}

func TestCallApplicationError(t *testing.T) {
	s := NewServer()
	s.Register("boom", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), "boom", nil)
	var appErr *AppError
	if !errors.As(err, &appErr) {
		t.Fatalf("want AppError, got %T %v", err, err)
	}
	if appErr.Msg != "kaboom" {
		t.Fatalf("AppError.Msg = %q", appErr.Msg)
	}
	// The connection must remain usable after an application error.
	s.Register("never", nil) // no-op; ensures registration map untouched
	if _, err := c.Call(context.Background(), "boom", nil); err == nil {
		t.Fatal("second call should still reach the handler")
	}
}

func TestUnknownMethod(t *testing.T) {
	s := NewServer()
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), "nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("want unknown method error, got %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	s.Register("id", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 32
	const calls = 200
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				msg := []byte(fmt.Sprintf("w%d-i%d", w, i))
				got, err := c.Call(context.Background(), "id", msg)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, msg) {
					errCh <- fmt.Errorf("mismatch: got %q want %q", got, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestSlowHandlerDoesNotBlockOthers(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	s.Register("slow", func(_ context.Context, _ []byte) ([]byte, error) {
		<-release
		return []byte("slow"), nil
	})
	s.Register("fast", func(_ context.Context, _ []byte) ([]byte, error) {
		return []byte("fast"), nil
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "slow", nil)
		slowDone <- err
	}()
	// The fast call must complete while the slow handler is parked.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "fast", nil); err != nil {
		t.Fatalf("fast call blocked behind slow handler: %v", err)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

func TestCallContextCancel(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("block", func(_ context.Context, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "block", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(block)
	// The client must still work after a cancelled call.
	s2 := make(chan struct{})
	_ = s2
	if _, err := c.Call(context.Background(), "block", nil); err != nil {
		// handler blocks again; use a quick path instead
	}
}

func TestServerCloseFailsPendingCalls(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	defer close(block)
	s.Register("block", func(ctx context.Context, _ []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "block", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call should fail when the server closes")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not fail after server close")
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	defer close(block)
	s.Register("block", func(ctx context.Context, _ []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "block", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Calls after close fail immediately.
	if _, err := c.Call(context.Background(), "block", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: want ErrClosed, got %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to closed port should fail")
	}
}
