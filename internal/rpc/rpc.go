// Package rpc implements the remote procedure call stack used between
// Yesquel clients and storage servers.
//
// Design:
//
//   - One TCP connection per (client, server) pair, multiplexed: many
//     in-flight calls share the connection and responses may arrive out
//     of order, matched to callers by request id.
//   - Payloads are opaque []byte; marshalling belongs to the caller
//     (internal/kv hand-rolls encoders with internal/wire).
//   - Contexts: a call fails with ctx.Err() when its context is done;
//     cancellation does not tear down the connection.
//   - Errors returned by handlers travel back as application errors and
//     are distinguished from transport errors.
package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yesquel/internal/wire"
)

// readBufSize sizes the buffered reader in front of each connection.
// Frame reads otherwise cost two read syscalls each (header, payload);
// buffering collapses them to one and, under pipelined load, drains
// several queued frames per syscall — on loopback the RPC stack is
// syscall-bound, so this is a measurable share of commit latency.
const readBufSize = 1 << 16

// Handler processes one request and returns the response payload.
// Returning an error sends an application error to the caller; the
// connection stays healthy.
type Handler func(ctx context.Context, req []byte) ([]byte, error)

// Errors surfaced by the package.
var (
	ErrClosed        = errors.New("rpc: connection closed")
	ErrUnknownMethod = errors.New("rpc: unknown method")
	// ErrNotSent marks a call that failed before the request reached the
	// wire: the remote side cannot have executed it, so even
	// non-idempotent operations are safe to retry elsewhere. Transport
	// failures after the send do not carry it — the outcome is unknown.
	ErrNotSent = errors.New("rpc: request not sent")
)

// AppError is an error returned by the remote handler (as opposed to a
// transport failure). The text crosses the wire; the type does not.
// Code, when nonzero, is a service-defined classification assigned by
// the server's error coder (SetErrorCoder). It travels as a trailing
// optional wire field: a response from a server predating codes
// decodes with Code 0, and a coder-less server sends 0 explicitly.
type AppError struct {
	Msg  string
	Code uint64
}

func (e *AppError) Error() string { return e.Msg }

// AppErrIs reports whether err is an application error whose wire code
// is code. For responses that carry no code (Code 0 — a server
// predating codes, or one without a coder), it falls back to matching
// sentinel's text in the message, the legacy classification scheme
// the codes replace. This function is the ONE sanctioned home of that
// string match; everything else must compare codes or errors.Is a
// sentinel that survived the wire.
func AppErrIs(err error, code uint64, sentinel error) bool {
	var app *AppError
	if !errors.As(err, &app) {
		return false
	}
	if app.Code != 0 {
		return app.Code == code
	}
	//yesqlint:allow errsentinel -- legacy fallback: a pre-code response conveys the class only in its text
	return sentinel != nil && strings.Contains(app.Msg, sentinel.Error())
}

// frame kinds
const (
	kindRequest  = 0
	kindResponse = 1
)

// response status
const (
	statusOK  = 0
	statusErr = 1
)

func encodeRequest(id uint64, method string, body []byte) []byte {
	b := wire.NewBuffer(16 + len(method) + len(body))
	b.PutByte(kindRequest)
	b.PutUvarint(id)
	b.PutString(method)
	b.PutBytes(body)
	return b.Bytes()
}

func encodeResponse(id uint64, body []byte, appErr error, code uint64) []byte {
	b := wire.NewBuffer(16 + len(body))
	b.PutByte(kindResponse)
	b.PutUvarint(id)
	if appErr != nil {
		b.PutByte(statusErr)
		b.PutString(appErr.Error())
		// Trailing optional field: old clients stop after the message
		// and never see it; new clients read it only when present.
		b.PutUvarint(code)
	} else {
		b.PutByte(statusOK)
		b.PutBytes(body)
	}
	return b.Bytes()
}

// Server serves RPC requests on a listener. Methods are registered
// before Serve is called; registration after Serve starts is not
// supported (no locking on the read path).
type Server struct {
	handlers map[string]Handler
	coder    func(error) uint64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	baseCtx  context.Context
	cancelFn context.CancelFunc
}

// NewServer returns a Server with no registered methods.
func NewServer() *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
		baseCtx:  ctx,
		cancelFn: cancel,
	}
}

// Register installs h as the handler for method. It must be called
// before Serve.
func (s *Server) Register(method string, h Handler) {
	s.handlers[method] = h
}

// SetErrorCoder installs f to assign wire codes to handler errors
// (AppError.Code on the client side). Like Register, it must be called
// before Serve. The coder also classifies the server's own
// unknown-method rejection, which wraps ErrUnknownMethod. A nil or
// absent coder sends code 0 (clients then fall back to text matching;
// see AppErrIs).
func (s *Server) SetErrorCoder(f func(error) uint64) {
	s.coder = f
}

func (s *Server) errCode(err error) uint64 {
	if err == nil || s.coder == nil {
		return 0
	}
	return s.coder(err)
}

// Serve accepts connections on ln until Close is called. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes all connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancelFn()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	var writeMu sync.Mutex
	var handlerWG sync.WaitGroup
	defer handlerWG.Wait()

	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		r := wire.NewReader(payload)
		kind, err := r.Byte()
		if err != nil || kind != kindRequest {
			return // protocol error: drop the connection
		}
		id, err := r.Uvarint()
		if err != nil {
			return
		}
		method, err := r.String()
		if err != nil {
			return
		}
		body, err := r.Bytes()
		if err != nil {
			return
		}
		h, ok := s.handlers[method]
		if !ok {
			unknownErr := fmt.Errorf("%w: %s", ErrUnknownMethod, method)
			writeMu.Lock()
			wire.WriteFrame(conn, encodeResponse(id, nil, unknownErr, s.errCode(unknownErr)))
			writeMu.Unlock()
			continue
		}
		// Handlers run concurrently: a slow prepare must not block an
		// unrelated read on the same connection.
		handlerWG.Add(1)
		go func(id uint64, body []byte) {
			defer handlerWG.Done()
			resp, appErr := h(s.baseCtx, body)
			writeMu.Lock()
			err := wire.WriteFrame(conn, encodeResponse(id, resp, appErr, s.errCode(appErr)))
			writeMu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(id, body)
	}
}

// Client is a multiplexed RPC client bound to one server address.
// It is safe for concurrent use by multiple goroutines.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan callResult
	closed  bool
	err     error

	nextID atomic.Uint64
}

type callResult struct {
	body []byte
	err  error
}

// defaultDialTimeout bounds connection establishment: a blackholed
// host (power loss, partition without RST) must not stall the caller
// for the kernel's multi-minute connect timeout.
const defaultDialTimeout = 10 * time.Second

// Dial connects to a server at addr with the default connect timeout.
//
//yesqlint:blocking
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, defaultDialTimeout)
}

// DialTimeout connects to a server at addr, failing after the given
// connect timeout (0 = the package default).
//
//yesqlint:blocking
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // small RPCs dominate; never batch at the kernel
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan callResult),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection. In-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	for id, ch := range c.pending {
		ch <- callResult{err: err}
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.conn.Close()
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, readBufSize)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		r := wire.NewReader(payload)
		kind, err := r.Byte()
		if err != nil || kind != kindResponse {
			c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
			return
		}
		id, err := r.Uvarint()
		if err != nil {
			c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
			return
		}
		status, err := r.Byte()
		if err != nil {
			c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
			return
		}
		var res callResult
		if status == statusErr {
			msg, err := r.String()
			if err != nil {
				c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
				return
			}
			var code uint64
			if r.Remaining() > 0 { // trailing optional: absent from pre-code servers
				if code, err = r.Uvarint(); err != nil {
					c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
					return
				}
			}
			res.err = &AppError{Msg: msg, Code: code}
		} else {
			body, err := r.BytesCopy()
			if err != nil {
				c.fail(fmt.Errorf("%w: bad frame", ErrClosed))
				return
			}
			res.body = body
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- res
		}
		// A response for an unknown id means the call was cancelled;
		// drop it.
	}
}

// Call issues method(req) and waits for the response or ctx done.
//
//yesqlint:blocking
func (c *Client) Call(ctx context.Context, method string, req []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan callResult, 1)

	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, fmt.Errorf("%w: %w", ErrNotSent, err)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send(encodeRequest(id, method, req)); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A write error means the frame did not go out whole; the server
		// drops torn frames without executing them.
		return nil, fmt.Errorf("%w: %w", ErrNotSent, err)
	}

	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (c *Client) send(frame []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.WriteFrame(c.conn, frame)
}
