package rpc

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"yesquel/internal/wire"
)

// Malformed input must never crash or wedge the server; it drops the
// offending connection and keeps serving others.

func TestServerSurvivesGarbageConnection(t *testing.T) {
	s := NewServer()
	s.Register("echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	addr := startServer(t, s)

	// Raw garbage bytes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"))
	conn.Close()

	// A frame with a bogus kind byte.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wire.WriteFrame(conn2, []byte{0x77, 0x01, 0x02})
	conn2.Close()

	// An oversize frame header.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xffffffff)
	conn3.Write(hdr[:])
	conn3.Close()

	// A truncated valid-looking frame (header promises more bytes).
	conn4, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(hdr[:], 100)
	conn4.Write(hdr[:])
	conn4.Write([]byte("short"))
	conn4.Close()

	// The server must still serve a well-behaved client.
	time.Sleep(20 * time.Millisecond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(context.Background(), "echo", []byte("alive"))
	if err != nil || string(resp) != "alive" {
		t.Fatalf("server wedged after garbage: %q %v", resp, err)
	}
}

func TestClientSurvivesGarbageResponse(t *testing.T) {
	// A fake "server" that answers with a corrupt frame: the client
	// must fail the call cleanly, not hang or panic.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		wire.ReadFrame(conn) // swallow the request
		wire.WriteFrame(conn, []byte{0x55, 0xaa})
		conn.Close()
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "anything", nil); err == nil {
		t.Fatal("corrupt response produced a successful call")
	}
}
