package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"yesquel/internal/wire"
)

// Typed error codes: the server's coder stamps AppError.Code onto the
// wire as a trailing optional field, and AppErrIs matches it without
// looking at message text. These tests pin the round trip, the
// unknown-method stamping, the coder-less zero, the legacy text
// fallback, and — via a hand-built old-format frame — that a new
// client still decodes responses from servers predating codes.

var errTestSentinel = errors.New("errcode_test: sentinel")

const testCode = 42

func TestErrorCodeRoundTrip(t *testing.T) {
	s := NewServer()
	s.Register("fail", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, fmt.Errorf("%w: wrapped detail", errTestSentinel)
	})
	s.SetErrorCoder(func(err error) uint64 {
		if errors.Is(err, errTestSentinel) {
			return testCode
		}
		return 0
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), "fail", nil)
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("want *AppError, got %v", err)
	}
	if app.Code != testCode {
		t.Fatalf("Code = %d, want %d", app.Code, testCode)
	}
	// The code decides; the sentinel argument is only the legacy
	// fallback and must not rescue a mismatched code.
	if !AppErrIs(err, testCode, nil) {
		t.Fatal("AppErrIs(code) = false for matching code")
	}
	if AppErrIs(err, testCode+1, errTestSentinel) {
		t.Fatal("AppErrIs matched a different code on a coded response")
	}
}

func TestErrorCodeUnknownMethod(t *testing.T) {
	s := NewServer()
	s.SetErrorCoder(func(err error) uint64 {
		if errors.Is(err, ErrUnknownMethod) {
			return testCode
		}
		return 0
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), "no-such-method", nil)
	if !AppErrIs(err, testCode, ErrUnknownMethod) {
		t.Fatalf("unknown-method rejection not stamped with coder's code: %v", err)
	}
}

func TestErrorCodeLegacyTextFallback(t *testing.T) {
	// No coder installed: the server sends code 0 and clients must fall
	// back to matching the sentinel's text, the pre-code scheme.
	s := NewServer()
	s.Register("fail", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, fmt.Errorf("outer: %w", errTestSentinel)
	})
	addr := startServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), "fail", nil)
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("want *AppError, got %v", err)
	}
	if app.Code != 0 {
		t.Fatalf("Code = %d, want 0 from a coder-less server", app.Code)
	}
	if !AppErrIs(err, testCode, errTestSentinel) {
		t.Fatal("legacy fallback did not match the sentinel text")
	}
	if AppErrIs(err, testCode, errors.New("some other text")) {
		t.Fatal("legacy fallback matched a sentinel not in the message")
	}
}

// TestDecodeLegacyErrorFrame feeds the client an error response in the
// OLD wire format — no trailing code — from a hand-rolled server, and
// checks the client decodes it as Code 0 rather than failing the
// connection: the backward-compatibility contract of the trailing
// optional field.
func TestDecodeLegacyErrorFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		r := wire.NewReader(payload)
		r.Byte()             // kind
		id, _ := r.Uvarint() // request id
		b := wire.NewBuffer(32)
		b.PutByte(kindResponse)
		b.PutUvarint(id)
		b.PutByte(statusErr)
		b.PutString("legacy: " + errTestSentinel.Error())
		// Deliberately NO trailing code uvarint.
		wire.WriteFrame(conn, b.Bytes())
		wire.ReadFrame(conn) // hold the conn open until the client is done
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), "anything", nil)
	var app *AppError
	if !errors.As(err, &app) {
		t.Fatalf("want *AppError from legacy frame, got %v", err)
	}
	if app.Code != 0 {
		t.Fatalf("Code = %d, want 0 from a legacy frame", app.Code)
	}
	if !AppErrIs(err, testCode, errTestSentinel) {
		t.Fatal("legacy frame did not fall back to text matching")
	}
}
