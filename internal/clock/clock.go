// Package clock provides hybrid logical clocks (HLC) for Yesquel's
// snapshot-isolation timestamps.
//
// The paper notes that Yesquel's transaction protocol, unlike F1/
// Spanner, "does not require special hardware clocks". We use a hybrid
// logical clock: timestamps are (physical milliseconds, logical
// counter) packed into a uint64 so they are totally ordered, close to
// real time, and advance monotonically even when the OS clock steps
// backwards. Every message between clients and servers carries a
// timestamp and the receiver merges it, so causally related events are
// ordered.
package clock

import (
	"sync"
	"time"
)

// Timestamp is a hybrid logical clock reading. The high 48 bits hold
// physical milliseconds since the Unix epoch; the low 16 bits hold a
// logical counter that disambiguates events within one millisecond.
// The zero Timestamp sorts before every real timestamp.
type Timestamp uint64

const logicalBits = 16
const logicalMask = (1 << logicalBits) - 1

// Max is the largest representable timestamp. Reading at Max yields the
// latest committed data.
const Max = Timestamp(^uint64(0))

// Make assembles a Timestamp from wall milliseconds and a logical
// counter.
func Make(wallMillis uint64, logical uint16) Timestamp {
	return Timestamp(wallMillis<<logicalBits | uint64(logical))
}

// WallMillis extracts the physical component in milliseconds.
func (t Timestamp) WallMillis() uint64 { return uint64(t) >> logicalBits }

// Logical extracts the logical counter.
func (t Timestamp) Logical() uint16 { return uint16(uint64(t) & logicalMask) }

// Next returns the smallest timestamp greater than t.
func (t Timestamp) Next() Timestamp { return t + 1 }

// HLC is a hybrid logical clock. The zero value is ready to use and
// reads the system clock; tests can substitute a fake physical source
// with SetPhysical.
type HLC struct {
	mu       sync.Mutex
	last     Timestamp
	physical func() uint64 // wall milliseconds
}

// New returns an HLC backed by the system clock.
func New() *HLC { return &HLC{} }

// SetPhysical replaces the physical clock source (wall milliseconds).
// Pass nil to restore the system clock. Intended for tests.
func (c *HLC) SetPhysical(f func() uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.physical = f
}

func (c *HLC) now() uint64 {
	if c.physical != nil {
		return c.physical()
	}
	return uint64(time.Now().UnixMilli())
}

// Now returns a timestamp strictly greater than every previous Now or
// Observe result on this clock.
func (c *HLC) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := c.now()
	t := Make(wall, 0)
	if t <= c.last {
		t = c.last.Next()
	}
	c.last = t
	return t
}

// Observe merges a timestamp received from another node, guaranteeing
// that subsequent Now results exceed it. It returns the merged local
// reading.
func (c *HLC) Observe(remote Timestamp) Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := c.now()
	t := Make(wall, 0)
	if t <= c.last {
		t = c.last
	}
	if t <= remote {
		t = remote
	}
	t = t.Next()
	c.last = t
	return t
}

// Last returns the most recent timestamp issued, without advancing.
func (c *HLC) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}
