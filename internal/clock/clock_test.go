package clock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestMakeFields(t *testing.T) {
	ts := Make(12345, 678)
	if ts.WallMillis() != 12345 {
		t.Fatalf("WallMillis = %d", ts.WallMillis())
	}
	if ts.Logical() != 678 {
		t.Fatalf("Logical = %d", ts.Logical())
	}
}

func TestOrderingByWallThenLogical(t *testing.T) {
	if !(Make(1, 0) < Make(2, 0)) {
		t.Fatal("wall ordering broken")
	}
	if !(Make(1, 5) < Make(1, 6)) {
		t.Fatal("logical ordering broken")
	}
	if !(Make(1, 65535) < Make(2, 0)) {
		t.Fatal("wall must dominate logical")
	}
	var zero Timestamp
	if !(zero < Make(1, 0)) {
		t.Fatal("zero must sort first")
	}
}

func TestNowMonotonic(t *testing.T) {
	c := New()
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		cur := c.Now()
		if cur <= prev {
			t.Fatalf("Now not strictly increasing: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestNowMonotonicUnderClockStepBack(t *testing.T) {
	c := New()
	wall := uint64(1000)
	c.SetPhysical(func() uint64 { return wall })
	a := c.Now()
	wall = 500 // OS clock steps backwards
	b := c.Now()
	if b <= a {
		t.Fatalf("HLC went backwards with the physical clock: %d then %d", a, b)
	}
	wall = 2000 // clock recovers; HLC should follow
	d := c.Now()
	if d.WallMillis() != 2000 {
		t.Fatalf("HLC did not resume tracking wall time: %d", d.WallMillis())
	}
}

func TestObserveAdvancesPastRemote(t *testing.T) {
	c := New()
	c.SetPhysical(func() uint64 { return 100 })
	remote := Make(5000, 3) // far in our future
	got := c.Observe(remote)
	if got <= remote {
		t.Fatalf("Observe(%d) = %d, want > remote", remote, got)
	}
	if next := c.Now(); next <= got {
		t.Fatalf("Now after Observe not increasing: %d then %d", got, next)
	}
}

func TestObserveOldRemoteStillAdvances(t *testing.T) {
	c := New()
	c.SetPhysical(func() uint64 { return 100 })
	a := c.Now()
	got := c.Observe(Make(1, 0)) // remote far in the past
	if got <= a {
		t.Fatalf("Observe must still advance local clock: %d then %d", a, got)
	}
}

func TestConcurrentNowUnique(t *testing.T) {
	c := New()
	const workers = 8
	const per = 2000
	var mu sync.Mutex
	seen := make(map[Timestamp]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Timestamp, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, c.Now())
			}
			mu.Lock()
			for _, ts := range local {
				if seen[ts] {
					mu.Unlock()
					t.Errorf("duplicate timestamp %d", ts)
					return
				}
				seen[ts] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestQuickMakeRoundTrip(t *testing.T) {
	f := func(wall uint64, logical uint16) bool {
		wall &= (1 << 48) - 1 // field width
		ts := Make(wall, logical)
		return ts.WallMillis() == wall && ts.Logical() == logical
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLast(t *testing.T) {
	c := New()
	if c.Last() != 0 {
		t.Fatal("fresh clock Last should be zero")
	}
	ts := c.Now()
	if c.Last() != ts {
		t.Fatalf("Last = %d, want %d", c.Last(), ts)
	}
}
