// Package leakcheck fails a test binary whose goroutines outlive its
// tests. It is a small stdlib substitute for the usual goleak
// dependency (this tree builds with no module downloads): after the
// tests pass, it snapshots all goroutine stacks, ignores the runtime's
// and the caller's declared long-lived ones, and retries over a short
// settle window before declaring the rest leaked.
//
// Wire it into a package with:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Long-lived goroutines that are part of the package's design are
// declared by substring of their stack (typically the "created by"
// frame) via Allow options.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// testRunner matches *testing.M without importing testing into
// non-test builds.
type testRunner interface{ Run() int }

// settleWindow bounds how long Main waits for goroutines that are
// merely slow to exit (deferred Closes racing the test's return). Real
// leaks are permanent, so a retry loop distinguishes the two.
const settleWindow = 5 * time.Second

// ignoredStacks are goroutines every Go test binary owns: the test
// framework itself and runtime helpers. Matched as substrings of the
// full stack block.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.RunTests",
	"runtime.goexit0",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"runtime.gc(",
	"runtime.MHeap_Scavenger",
	"leakcheck.Main",
	"leakcheck.leaked",
}

// Main runs the package's tests, then fails the binary (exit 1) if
// goroutines other than the allowed set are still running once the
// settle window closes. allow entries are substrings matched against a
// goroutine's full stack trace; a goroutine matching any entry is
// permitted to live on.
func Main(m testRunner, allow ...string) {
	code := m.Run()
	if code != 0 {
		os.Exit(code) // test failures win; leak output would only bury them
	}
	deadline := time.Now().Add(settleWindow)
	var left []string
	for {
		left = leaked(allow)
		if len(left) == 0 {
			os.Exit(code)
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after the tests:\n\n", len(left))
	for _, s := range left {
		fmt.Fprintf(os.Stderr, "%s\n\n", s)
	}
	os.Exit(1)
}

// leaked returns the stack blocks of goroutines that are neither the
// runtime's, the test framework's, nor covered by allow.
func leaked(allow []string) []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
blocks:
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" || !strings.HasPrefix(block, "goroutine ") {
			continue
		}
		for _, ig := range ignoredStacks {
			if strings.Contains(block, ig) {
				continue blocks
			}
		}
		for _, a := range allow {
			if strings.Contains(block, a) {
				continue blocks
			}
		}
		out = append(out, block)
	}
	return out
}
