package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"yesquel/internal/baseline"
	"yesquel/internal/cluster"
	"yesquel/internal/core"
	"yesquel/internal/dbt"
	"yesquel/internal/kv"
	"yesquel/internal/kv/kvclient"
	"yesquel/internal/kv/kvserver"
	"yesquel/internal/sql"
	"yesquel/internal/wiki"
	"yesquel/internal/ycsb"
)

// benchTreeID is the tree id used for direct-DBT experiments.
const benchTreeID = 7

// putRetry inserts one key with conflict retries (splits race writers
// by design).
func putRetry(ctx context.Context, c *kvclient.Client, tree *dbt.Tree, key, val []byte) error {
	for attempt := 0; ; attempt++ {
		tx := c.Begin()
		err := tree.Put(ctx, tx, key, val)
		if err == nil {
			err = tx.Commit(ctx)
		} else {
			tx.Abort()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, kv.ErrConflict) || attempt > 50 {
			return err
		}
		time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
	}
}

// bulkLoadTree inserts records 0..n-1 into tree in batches. Loading
// goes through a synchronous-split handle so structural maintenance
// serializes with the batches instead of aborting them.
func bulkLoadTree(ctx context.Context, c *kvclient.Client, mainTree *dbt.Tree, n int) error {
	loadCfg := dbt.Config{SyncSplit: true}
	tree, err := dbt.OpenUnchecked(c, mainTree.ID(), loadCfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	const batch = 64
	for base := 0; base < n; base += batch {
		end := base + batch
		if end > n {
			end = n
		}
		ok := false
		for attempt := 0; attempt < 50 && !ok; attempt++ {
			tx := c.Begin()
			var err error
			for i := base; i < end; i++ {
				if err = tree.Put(ctx, tx, []byte(ycsb.KeyName(int64(i))), ycsb.Value(int64(i))); err != nil {
					break
				}
			}
			if err == nil {
				err = tx.Commit(ctx)
			} else {
				tx.Abort()
			}
			if err == nil {
				ok = true
			} else if !errors.Is(err, kv.ErrConflict) {
				return err
			} else {
				time.Sleep(time.Duration(attempt+1) * 200 * time.Microsecond)
			}
		}
		if !ok {
			return fmt.Errorf("bench: bulk load batch at %d kept conflicting", base)
		}
		if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
			return err
		}
	}
	return nil
}

// RunE1 — YDBT operation microbenchmark: one server, one client,
// per-operation latency and single-client throughput on a loaded tree.
func RunE1(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	cl, err := cluster.Start(1, kvserver.Config{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// No-op on this unreplicated cluster, but keeps the experiment
	// honest when pointed at a replicated deployment: read-only
	// transactions go to whatever replica can serve them.
	c.SetFollowerReads(true)
	tree, err := dbt.Create(ctx, c, benchTreeID, dbt.Config{})
	if err != nil {
		return nil, err
	}
	defer tree.Close()
	if err := bulkLoadTree(ctx, c, tree, p.Records); err != nil {
		return nil, err
	}

	iters := 2000
	if iters > p.Records {
		iters = p.Records
	}
	rng := rand.New(rand.NewSource(1))
	table := &Table{
		Title: "E1: YDBT operation microbenchmark (1 server, 1 client, " +
			fmt.Sprintf("%d records)", p.Records),
		Comment: "paper claim: lookups ~1 network round trip; inserts/deletes add commit;\nscans amortize one leaf read per ~leaf of cells",
		Header:  []string{"operation", "mean", "p50", "p99", "ops/s"},
	}
	measure := func(name string, fn func(i int) error) error {
		lat := &latencies{}
		start := time.Now()
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := fn(i); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			lat.add(time.Since(t0))
		}
		elapsed := time.Since(start)
		table.Rows = append(table.Rows, Row{Cells: []string{
			name, fmtDur(lat.mean()), fmtDur(lat.percentile(0.50)),
			fmtDur(lat.percentile(0.99)), fmtF(opsPerSec(uint64(iters), elapsed)),
		}})
		return nil
	}

	if err := measure("lookup", func(i int) error {
		// Read-only: BeginFollower lets a replicated deployment serve
		// the lookup from any replica at the durability frontier; on an
		// unreplicated cluster it is identical to Begin.
		tx := c.BeginFollower()
		defer tx.Abort()
		_, err := tree.Get(ctx, tx, []byte(ycsb.KeyName(rng.Int63n(int64(p.Records)))))
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("insert", func(i int) error {
		return putRetry(ctx, c, tree, []byte(ycsb.KeyName(int64(p.Records+i))), ycsb.Value(int64(i)))
	}); err != nil {
		return nil, err
	}
	if err := measure("update", func(i int) error {
		return putRetry(ctx, c, tree, []byte(ycsb.KeyName(rng.Int63n(int64(p.Records)))), ycsb.Value(int64(i)))
	}); err != nil {
		return nil, err
	}
	if err := measure("delete", func(i int) error {
		tx := c.Begin()
		err := tree.Delete(ctx, tx, []byte(ycsb.KeyName(int64(p.Records+i))))
		if err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit(ctx)
	}); err != nil {
		return nil, err
	}
	if err := measure("scan100", func(i int) error {
		tx := c.BeginFollower()
		defer tx.Abort()
		_, err := tree.Scan(ctx, tx, []byte(ycsb.KeyName(rng.Int63n(int64(p.Records)))), 100)
		return err
	}); err != nil {
		return nil, err
	}
	return table, nil
}

// RunE2 — YDBT scalability: aggregate throughput as storage servers are
// added, with the client population scaled 4x per server (the paper's
// near-linear scaling figure).
func RunE2(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	table := &Table{
		Title: "E2: YDBT scalability (clients = 4 x servers)",
		Comment: "paper claim: aggregate throughput grows near-linearly with servers\n" +
			"balance = min/max share of reads served per storage server (1.00 = perfectly even);\n" +
			"on a host with fewer cores than servers the wall-clock curve flattens (CPU-bound),\n" +
			"but the balance column still shows the load spreading that drives the paper's scaling",
		Header: []string{"servers", "clients", "uniform reads/s", "zipfian reads/s", "95/5 r/w ops/s", "balance"},
	}
	for _, n := range p.Servers {
		cl, err := cluster.Start(n, kvserver.Config{})
		if err != nil {
			return nil, err
		}
		loader, err := cl.NewClient()
		if err != nil {
			cl.Close()
			return nil, err
		}
		tree, err := dbt.Create(ctx, loader, benchTreeID, dbt.Config{})
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := bulkLoadTree(ctx, loader, tree, p.Records); err != nil {
			cl.Close()
			return nil, err
		}
		workers := 4 * n
		// Each worker models one client host: its own connections and
		// its own inner-node cache.
		wcs := make([]*kvclient.Client, workers)
		wts := make([]*dbt.Tree, workers)
		for w := range wcs {
			wc, err := cl.NewClient()
			if err != nil {
				cl.Close()
				return nil, err
			}
			wc.SetFollowerReads(true)
			wt, err := dbt.Open(ctx, wc, benchTreeID, dbt.Config{})
			if err != nil {
				cl.Close()
				return nil, err
			}
			wcs[w], wts[w] = wc, wt
		}
		cells := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", workers)}
		var balance string

		for _, mode := range []string{"uniform", "zipfian", "mixed"} {
			readsBefore := make([]uint64, n)
			for i, srv := range cl.Servers {
				readsBefore[i] = srv.Store().Stats().Reads
			}
			rngs := make([]*rand.Rand, workers)
			zipfs := make([]*ycsb.Zipfian, workers)
			for w := range rngs {
				rngs[w] = rand.New(rand.NewSource(int64(w + 1)))
				zipfs[w] = ycsb.NewZipfian(rngs[w], int64(p.Records), ycsb.DefaultTheta)
			}
			insertSeq := make([]int64, workers)
			ops, _, elapsed := runFor(p.Duration, workers, func(w int) (int, error) {
				var key int64
				if mode == "uniform" {
					key = rngs[w].Int63n(int64(p.Records))
				} else {
					key = zipfs[w].Next()
				}
				if mode == "mixed" && rngs[w].Intn(20) == 0 {
					k := int64(w+1)<<40 | insertSeq[w]
					insertSeq[w]++
					if err := putRetry(ctx, wcs[w], wts[w], []byte(ycsb.KeyName(k)), ycsb.Value(k)); err != nil {
						return 0, err
					}
					return 1, nil
				}
				tx := wcs[w].BeginFollower()
				defer tx.Abort()
				_, err := wts[w].Get(ctx, tx, []byte(ycsb.KeyName(key)))
				if err != nil && !errors.Is(err, dbt.ErrKeyNotFound) {
					return 0, err
				}
				return 1, nil
			})
			cells = append(cells, fmtF(opsPerSec(ops, elapsed)))
			if mode == "uniform" {
				minReads, maxReads := ^uint64(0), uint64(0)
				for i, srv := range cl.Servers {
					d := srv.Store().Stats().Reads - readsBefore[i]
					if d < minReads {
						minReads = d
					}
					if d > maxReads {
						maxReads = d
					}
				}
				balance = "1.00"
				if maxReads > 0 {
					balance = fmt.Sprintf("%.2f", float64(minReads)/float64(maxReads))
				}
			}
		}
		cells = append(cells, balance)
		table.Rows = append(table.Rows, Row{Cells: cells})
		for w := range wcs {
			wts[w].Close()
			wcs[w].Close()
		}
		tree.Close()
		loader.Close()
		cl.Close()
	}
	return table, nil
}

// ycsbSQLSchema is the table used by the SQL side of E3.
const ycsbSQLSchema = "CREATE TABLE usertable (k TEXT PRIMARY KEY, v BLOB)"

// RunE3 — YCSB A–F: Yesquel (full SQL path) vs the NOSQL comparator
// (raw KV ops; workload E's scans use direct DBT access, since a plain
// KV store has no ordered scan).
func RunE3(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	const servers = 4
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// --- Yesquel side ---
	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		return nil, err
	}
	defer yc.Close()
	setup := yc.Session()
	if _, err := setup.Exec(ctx, ycsbSQLSchema); err != nil {
		return nil, err
	}
	for i := 0; i < p.Records; i++ {
		if _, err := setup.Exec(ctx, "INSERT INTO usertable VALUES (?, ?)",
			sql.Text(ycsb.KeyName(int64(i))), sql.Blob(ycsb.Value(int64(i)))); err != nil {
			return nil, err
		}
	}

	// --- NOSQL side: raw kv + a direct DBT for scans ---
	kvc, err := cl.NewClient()
	if err != nil {
		return nil, err
	}
	defer kvc.Close()
	kvc.SetFollowerReads(true)
	raw := baseline.NewRawKV(kvc)
	for i := 0; i < p.Records; i++ {
		if err := raw.Set(ctx, ycsb.KeyName(int64(i)), ycsb.Value(int64(i))); err != nil {
			return nil, err
		}
	}
	rawTree, err := dbt.Create(ctx, kvc, benchTreeID, dbt.Config{})
	if err != nil {
		return nil, err
	}
	defer rawTree.Close()
	if err := bulkLoadTree(ctx, kvc, rawTree, p.Records); err != nil {
		return nil, err
	}

	table := &Table{
		Title: fmt.Sprintf("E3: YCSB workloads, %d servers, %d workers, %d records",
			servers, p.Workers, p.Records),
		Comment: "paper claim: Yesquel stays within a small factor (~<=3x) of the NOSQL\nstore on every mix; workload E scans on the NOSQL side use the DBT directly",
		Header:  []string{"workload", "yesquel ops/s", "nosql ops/s", "nosql/yesquel"},
	}

	for _, wl := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadD, ycsb.WorkloadE, ycsb.WorkloadF} {
		// Yesquel.
		sessions := make([]*sql.DB, p.Workers)
		gens := make([]*ycsb.Generator, p.Workers)
		for w := range sessions {
			sessions[w] = yc.Session()
			g, err := ycsb.NewGenerator(wl, int64(p.Records), int64(w+1))
			if err != nil {
				return nil, err
			}
			g.SetInsertBase(int64(w+1) << 40)
			gens[w] = g
		}
		yOps, yErrs, yElapsed := runFor(p.Duration, p.Workers, func(w int) (int, error) {
			return runYCSBSQLOp(ctx, sessions[w], gens[w].Next())
		})
		_ = yErrs

		// NOSQL.
		gens2 := make([]*ycsb.Generator, p.Workers)
		for w := range gens2 {
			g, err := ycsb.NewGenerator(wl, int64(p.Records), int64(w+101))
			if err != nil {
				return nil, err
			}
			g.SetInsertBase(int64(w+100) << 40)
			gens2[w] = g
		}
		nOps, nErrs, nElapsed := runFor(p.Duration, p.Workers, func(w int) (int, error) {
			return runYCSBKVOp(ctx, kvc, raw, rawTree, gens2[w].Next())
		})
		_ = nErrs

		yRate := opsPerSec(yOps, yElapsed)
		nRate := opsPerSec(nOps, nElapsed)
		ratio := "-"
		if yRate > 0 {
			ratio = fmt.Sprintf("%.2fx", nRate/yRate)
		}
		table.Rows = append(table.Rows, Row{Cells: []string{
			string(wl), fmtF(yRate), fmtF(nRate), ratio,
		}})
	}
	return table, nil
}

func runYCSBSQLOp(ctx context.Context, db *sql.DB, op ycsb.Op) (int, error) {
	key := sql.Text(ycsb.KeyName(op.Key))
	switch op.Kind {
	case ycsb.OpRead:
		_, err := db.Query(ctx, "SELECT v FROM usertable WHERE k = ?", key)
		return 1, err
	case ycsb.OpUpdate:
		_, err := db.Exec(ctx, "UPDATE usertable SET v = ? WHERE k = ?", sql.Blob(ycsb.Value(op.Key+1)), key)
		return 1, err
	case ycsb.OpInsert:
		_, err := db.Exec(ctx, "INSERT INTO usertable VALUES (?, ?)", key, sql.Blob(ycsb.Value(op.Key)))
		return 1, err
	case ycsb.OpScan:
		_, err := db.Query(ctx, "SELECT k, v FROM usertable WHERE k >= ? LIMIT ?", key, sql.Int(int64(op.ScanLen)))
		return 1, err
	case ycsb.OpRMW:
		rows, err := db.Query(ctx, "SELECT v FROM usertable WHERE k = ?", key)
		if err != nil {
			return 0, err
		}
		_ = rows
		_, err = db.Exec(ctx, "UPDATE usertable SET v = ? WHERE k = ?", sql.Blob(ycsb.Value(op.Key+2)), key)
		return 1, err
	}
	return 0, fmt.Errorf("bench: bad op")
}

func runYCSBKVOp(ctx context.Context, c *kvclient.Client, raw *baseline.RawKV, tree *dbt.Tree, op ycsb.Op) (int, error) {
	key := ycsb.KeyName(op.Key)
	switch op.Kind {
	case ycsb.OpRead:
		_, err := raw.Get(ctx, key)
		if errors.Is(err, kv.ErrNotFound) {
			err = nil
		}
		return 1, err
	case ycsb.OpUpdate, ycsb.OpInsert:
		return 1, raw.Set(ctx, key, ycsb.Value(op.Key+1))
	case ycsb.OpScan:
		// Scans never write: the follower snapshot routes them off the
		// primary wherever the deployment is replicated.
		tx := c.BeginFollower()
		defer tx.Abort()
		_, err := tree.Scan(ctx, tx, []byte(key), op.ScanLen)
		return 1, err
	case ycsb.OpRMW:
		v, err := raw.Get(ctx, key)
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			return 0, err
		}
		_ = v
		return 1, raw.Set(ctx, key, ycsb.Value(op.Key+2))
	}
	return 0, fmt.Errorf("bench: bad op")
}

// RunE4 — the Wikipedia application: Yesquel scaling with servers vs
// the centralized SQL comparator at the same client counts.
func RunE4(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	pages := p.Records / 20
	if pages < 50 {
		pages = 50
	}
	table := &Table{
		Title:   fmt.Sprintf("E4: Wikipedia workload (%d pages, 90/10 read/edit, clients = 4 x servers)", pages),
		Comment: "paper claim: Yesquel's throughput grows with storage servers while the\ncentralized engine plateaus at its worker pool",
		Header:  []string{"servers", "clients", "yesquel ops/s", "centralized ops/s"},
	}

	// Centralized comparator: built once; its capacity does not grow.
	csrv, err := baseline.NewCentralSQLServer(8)
	if err != nil {
		return nil, err
	}
	defer csrv.Close()
	if err := csrv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	go csrv.Serve()
	cload, err := baseline.DialCentralSQL(csrv.Addr())
	if err != nil {
		return nil, err
	}
	defer cload.Close()
	if err := wiki.Load(ctx, cload, pages, 3); err != nil {
		return nil, err
	}

	for _, n := range p.Servers {
		cl, err := cluster.Start(n, kvserver.Config{})
		if err != nil {
			return nil, err
		}
		yc, err := core.Connect(cl.Addrs, core.Options{})
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := wiki.Load(ctx, wiki.DBExecutor{DB: yc.Session()}, pages, 3); err != nil {
			yc.Close()
			cl.Close()
			return nil, err
		}
		workers := 4 * n

		yworkers := make([]*wiki.Worker, workers)
		for w := range yworkers {
			yworkers[w] = wiki.NewWorker(wiki.DBExecutor{DB: yc.Session()}, int64(pages), 0.1, int64(w+1))
		}
		yOps, _, yElapsed := runFor(p.Duration, workers, func(w int) (int, error) {
			if err := yworkers[w].Step(ctx); err != nil {
				return 0, err
			}
			return 1, nil
		})

		cworkers := make([]*wiki.Worker, workers)
		cconns := make([]*baseline.CentralSQLClient, workers)
		for w := range cworkers {
			cc, err := baseline.DialCentralSQL(csrv.Addr())
			if err != nil {
				yc.Close()
				cl.Close()
				return nil, err
			}
			cconns[w] = cc
			cworkers[w] = wiki.NewWorker(cc, int64(pages), 0.1, int64(1000+w))
		}
		cOps, _, cElapsed := runFor(p.Duration, workers, func(w int) (int, error) {
			if err := cworkers[w].Step(ctx); err != nil {
				return 0, err
			}
			return 1, nil
		})
		for _, cc := range cconns {
			cc.Close()
		}

		table.Rows = append(table.Rows, Row{Cells: []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", workers),
			fmtF(opsPerSec(yOps, yElapsed)), fmtF(opsPerSec(cOps, cElapsed)),
		}})
		yc.Close()
		cl.Close()
	}
	return table, nil
}

// RunE5 — ablation of YDBT optimizations: the full tree vs each
// optimization disabled, on a 50/50 lookup/update mix.
func RunE5(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	const servers = 4
	configs := []struct {
		name string
		cfg  dbt.Config
	}{
		{"full YDBT", dbt.Config{}},
		{"no inner-node cache", dbt.Config{NoCache: true}},
		{"no delta ops", dbt.Config{NoDelta: true}},
		{"no partial reads", dbt.Config{NoPartial: true}},
		{"sync (writer) splits", dbt.Config{SyncSplit: true}},
		{"naive (all disabled)", dbt.NaiveConfig()},
	}
	table := &Table{
		Title:   fmt.Sprintf("E5: YDBT optimization ablation (%d servers, %d workers, 50/50 read/update)", servers, 8),
		Comment: "paper claim: caching removes inner-node reads from every descent; delta ops\nremove leaf rewrite bytes; delegated splits take splits off the writer path",
		Header:  []string{"configuration", "ops/s", "node reads/op", "vs full"},
	}
	var fullRate float64
	for _, cfg := range configs {
		cl, err := cluster.Start(servers, kvserver.Config{})
		if err != nil {
			return nil, err
		}
		loader, err := cl.NewClient()
		if err != nil {
			cl.Close()
			return nil, err
		}
		tree, err := dbt.Create(ctx, loader, benchTreeID, cfg.cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := bulkLoadTree(ctx, loader, tree, p.Records); err != nil {
			cl.Close()
			return nil, err
		}
		if cfg.cfg.SyncSplit {
			if err := tree.MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
				cl.Close()
				return nil, err
			}
		}

		const workers = 8
		wcs := make([]*kvclient.Client, workers)
		wts := make([]*dbt.Tree, workers)
		rngs := make([]*rand.Rand, workers)
		for w := 0; w < workers; w++ {
			wc, err := cl.NewClient()
			if err != nil {
				cl.Close()
				return nil, err
			}
			wt, err := dbt.Open(ctx, wc, benchTreeID, cfg.cfg)
			if err != nil {
				cl.Close()
				return nil, err
			}
			wcs[w], wts[w], rngs[w] = wc, wt, rand.New(rand.NewSource(int64(w+1)))
		}
		readsBefore := uint64(0)
		for _, wt := range wts {
			readsBefore += wt.Stats().NodeReads
		}
		ops, _, elapsed := runFor(p.Duration, workers, func(w int) (int, error) {
			key := []byte(ycsb.KeyName(rngs[w].Int63n(int64(p.Records))))
			if rngs[w].Intn(2) == 0 {
				tx := wcs[w].Begin()
				defer tx.Abort()
				_, err := wts[w].Get(ctx, tx, key)
				if err != nil && !errors.Is(err, dbt.ErrKeyNotFound) {
					return 0, err
				}
				return 1, nil
			}
			if err := putRetry(ctx, wcs[w], wts[w], key, ycsb.Value(int64(w))); err != nil {
				return 0, err
			}
			if cfg.cfg.SyncSplit {
				if err := wts[w].MaintainNow(ctx); err != nil && !errors.Is(err, kv.ErrConflict) {
					return 0, err
				}
			}
			return 1, nil
		})
		readsAfter := uint64(0)
		for _, wt := range wts {
			readsAfter += wt.Stats().NodeReads
		}
		rate := opsPerSec(ops, elapsed)
		if cfg.name == "full YDBT" {
			fullRate = rate
		}
		perOp := "-"
		if ops > 0 {
			perOp = fmt.Sprintf("%.2f", float64(readsAfter-readsBefore)/float64(ops))
		}
		rel := "-"
		if fullRate > 0 {
			rel = fmt.Sprintf("%.2fx", rate/fullRate)
		}
		table.Rows = append(table.Rows, Row{Cells: []string{cfg.name, fmtF(rate), perOp, rel}})
		for w := 0; w < workers; w++ {
			wts[w].Close()
			wcs[w].Close()
		}
		tree.Close()
		loader.Close()
		cl.Close()
	}
	return table, nil
}

// RunE6 — commit latency vs number of participant servers: read-only
// commits are free; one participant uses the one-round fast path; more
// participants pay two-phase commit.
func RunE6(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	const servers = 8
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	c, err := cl.NewClient()
	if err != nil {
		return nil, err
	}
	defer c.Close()

	table := &Table{
		Title:   "E6: transaction commit latency vs participants (8 servers)",
		Comment: "paper claim: read-only commits need no communication; single-participant\ncommits take one round trip; k-participant commits pay 2PC (two rounds)",
		Header:  []string{"participants", "mean", "p50", "p99"},
	}
	oids := make([]kv.OID, servers)
	for i := range oids {
		oids[i] = c.NewOID(uint16(i))
	}
	const iters = 400
	for k := 0; k <= servers; k++ {
		lat := &latencies{}
		for i := 0; i < iters; i++ {
			tx := c.Begin()
			for j := 0; j < k; j++ {
				tx.ListAdd(oids[j], []byte(fmt.Sprintf("i%06d", i)), []byte("v"))
			}
			t0 := time.Now()
			if err := tx.Commit(ctx); err != nil {
				return nil, err
			}
			lat.add(time.Since(t0))
		}
		name := fmt.Sprintf("%d", k)
		if k == 0 {
			name = "0 (read-only)"
		}
		table.Rows = append(table.Rows, Row{Cells: []string{
			name, fmtDur(lat.mean()), fmtDur(lat.percentile(0.5)), fmtDur(lat.percentile(0.99)),
		}})
	}
	return table, nil
}

// RunE7 — scan throughput: the fence-navigated iterator with cached
// descents vs the naive (uncached) configuration.
func RunE7(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	const servers = 4
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	loader, err := cl.NewClient()
	if err != nil {
		return nil, err
	}
	defer loader.Close()
	tree, err := dbt.Create(ctx, loader, benchTreeID, dbt.Config{})
	if err != nil {
		return nil, err
	}
	defer tree.Close()
	if err := bulkLoadTree(ctx, loader, tree, p.Records); err != nil {
		return nil, err
	}

	table := &Table{
		Title:   fmt.Sprintf("E7: scan throughput (%d servers, %d records)", servers, p.Records),
		Comment: "paper claim: scans amortize to ~1 leaf read per leaf; without the cache\nevery next-leaf step re-reads the inner path",
		Header:  []string{"scan length", "config", "scans/s", "cells/s"},
	}
	for _, scanLen := range []int{10, 100, 1000} {
		for _, cfg := range []struct {
			name string
			c    dbt.Config
		}{{"full", dbt.Config{}}, {"no cache", dbt.Config{NoCache: true}}} {
			wc, err := cl.NewClient()
			if err != nil {
				return nil, err
			}
			wt, err := dbt.Open(ctx, wc, benchTreeID, cfg.c)
			if err != nil {
				wc.Close()
				return nil, err
			}
			scanRngs := make([]*rand.Rand, 4)
			for w := range scanRngs {
				scanRngs[w] = rand.New(rand.NewSource(int64(7 + w)))
			}
			var cellCount atomic64
			ops, _, elapsed := runFor(p.Duration, 4, func(w int) (int, error) {
				start := scanRngs[w].Int63n(int64(p.Records))
				tx := wc.Begin()
				defer tx.Abort()
				cells, err := wt.Scan(ctx, tx, []byte(ycsb.KeyName(start)), scanLen)
				if err != nil {
					return 0, err
				}
				cellCount.add(int64(len(cells)))
				return 1, nil
			})
			table.Rows = append(table.Rows, Row{Cells: []string{
				fmt.Sprintf("%d", scanLen), cfg.name,
				fmtF(opsPerSec(ops, elapsed)),
				fmtF(float64(cellCount.load()) / elapsed.Seconds()),
			}})
			wt.Close()
			wc.Close()
		}
	}
	return table, nil
}

// RunE8 — SQL statement microbenchmarks: per-statement latency of the
// query shapes Web applications issue.
func RunE8(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	const servers = 4
	cl, err := cluster.Start(servers, kvserver.Config{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	yc, err := core.Connect(cl.Addrs, core.Options{})
	if err != nil {
		return nil, err
	}
	defer yc.Close()
	db := yc.Session()

	for _, q := range []string{
		"CREATE TABLE item (id INTEGER PRIMARY KEY, cat INTEGER, name TEXT, price REAL)",
		"CREATE INDEX item_cat ON item (cat)",
		"CREATE TABLE fact (id INTEGER PRIMARY KEY, item_id INTEGER, qty INTEGER)",
	} {
		if _, err := db.Exec(ctx, q); err != nil {
			return nil, err
		}
	}
	nItems := p.Records / 10
	if nItems < 500 {
		nItems = 500
	}
	for i := 0; i < nItems; i++ {
		if _, err := db.Exec(ctx, "INSERT INTO item VALUES (?, ?, ?, ?)",
			sql.Int(int64(i)), sql.Int(int64(i%50)), sql.Text(fmt.Sprintf("item-%d", i)),
			sql.Float(float64(i)*0.5)); err != nil {
			return nil, err
		}
		if _, err := db.Exec(ctx, "INSERT INTO fact VALUES (?, ?, ?)",
			sql.Int(int64(i)), sql.Int(int64(i)), sql.Int(int64(i%7))); err != nil {
			return nil, err
		}
	}

	table := &Table{
		Title:   fmt.Sprintf("E8: SQL statement microbenchmarks (%d servers, %d rows)", servers, nItems),
		Comment: "per-statement latency of the paper's target query shapes",
		Header:  []string{"statement", "mean", "p50", "p99"},
	}
	rng := rand.New(rand.NewSource(3))
	const iters = 300
	insertSeq := int64(nItems) + 1
	stmts := []struct {
		name string
		fn   func(i int) error
	}{
		{"point SELECT by pk", func(i int) error {
			_, err := db.Query(ctx, "SELECT name, price FROM item WHERE id = ?", sql.Int(rng.Int63n(int64(nItems))))
			return err
		}},
		{"SELECT by secondary index", func(i int) error {
			_, err := db.Query(ctx, "SELECT count(*) FROM item WHERE cat = ?", sql.Int(rng.Int63n(50)))
			return err
		}},
		{"pk range scan LIMIT 20", func(i int) error {
			_, err := db.Query(ctx, "SELECT id FROM item WHERE id >= ? LIMIT 20", sql.Int(rng.Int63n(int64(nItems))))
			return err
		}},
		{"INSERT", func(i int) error {
			insertSeq++
			_, err := db.Exec(ctx, "INSERT INTO item VALUES (?, ?, 'new', 1.0)", sql.Int(insertSeq), sql.Int(insertSeq%50))
			return err
		}},
		{"UPDATE by pk", func(i int) error {
			_, err := db.Exec(ctx, "UPDATE item SET price = price + 1 WHERE id = ?", sql.Int(rng.Int63n(int64(nItems))))
			return err
		}},
		{"two-table join (pk inner)", func(i int) error {
			_, err := db.Query(ctx,
				"SELECT item.name, fact.qty FROM fact JOIN item ON item.id = fact.item_id WHERE fact.id = ?",
				sql.Int(rng.Int63n(int64(nItems))))
			return err
		}},
		{"aggregate GROUP BY (50 groups)", func(i int) error {
			_, err := db.Query(ctx, "SELECT cat, count(*), avg(price) FROM item WHERE cat < 5 GROUP BY cat")
			return err
		}},
		{"multi-statement transaction", func(i int) error {
			if _, err := db.Exec(ctx, "BEGIN"); err != nil {
				return err
			}
			id := rng.Int63n(int64(nItems))
			if _, err := db.Exec(ctx, "UPDATE fact SET qty = qty + 1 WHERE id = ?", sql.Int(id)); err != nil {
				db.Exec(ctx, "ROLLBACK")
				return err
			}
			if _, err := db.Exec(ctx, "UPDATE item SET price = price + 0.5 WHERE id = ?", sql.Int(id)); err != nil {
				db.Exec(ctx, "ROLLBACK")
				return err
			}
			_, err := db.Exec(ctx, "COMMIT")
			if errors.Is(err, kv.ErrConflict) {
				return nil // single-threaded here, but be safe
			}
			return err
		}},
	}
	for _, st := range stmts {
		lat := &latencies{}
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := st.fn(i); err != nil {
				return nil, fmt.Errorf("%s: %w", st.name, err)
			}
			lat.add(time.Since(t0))
		}
		table.Rows = append(table.Rows, Row{Cells: []string{
			st.name, fmtDur(lat.mean()), fmtDur(lat.percentile(0.5)), fmtDur(lat.percentile(0.99)),
		}})
	}
	return table, nil
}

// RunE9 — replication overhead: the synchronous primary-backup write
// path (every commit mirrored and acknowledged before the client sees
// it) against the plain single-server write path, plus the same
// comparison under the write-ahead log. Storage-layer replication is
// what lets the SQL layer above stay stateless, so its cost is the
// price of the paper's fault-tolerance story.
func RunE9(ctx context.Context, p Params) (*Table, error) {
	p = p.WithDefaults()
	table := &Table{
		Title:   "E9: replicated vs plain write path (1 slot)",
		Comment: "rf=2 pays a mirror acknowledgment per commit; group commit batches\nconcurrent commits into shared round trips and fsyncs (see\nBENCH_replication.json); reads are unaffected (not shown)",
		Header:  []string{"config", "writes/s", "mean", "p99"},
	}
	configs := []struct {
		name string
		rf   int
		wal  bool
	}{
		{"rf=1 (plain)", 1, false},
		{"rf=2 (mirrored)", 2, false},
		{"rf=1 + WAL", 1, true},
		{"rf=2 + WAL", 2, true},
	}
	for _, cfg := range configs {
		scfg := kvserver.Config{}
		if cfg.wal {
			dir, err := os.MkdirTemp("", "yesquel-e9-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			scfg.LogPath = dir
		}
		cl, err := cluster.StartReplicated(1, cfg.rf, scfg)
		if err != nil {
			return nil, err
		}
		lat := &latencies{}
		var seq atomic.Uint64
		ops, errs, elapsed := runFor(p.Duration, p.Workers, func(worker int) (int, error) {
			c, err := cl.NewClient()
			if err != nil {
				return 0, err
			}
			defer c.Close()
			n := 0
			deadline := time.Now().Add(p.Duration)
			for time.Now().Before(deadline) {
				tx := c.Begin()
				tx.Put(c.NewOID(0), kv.NewPlain([]byte(fmt.Sprintf("w%d", seq.Add(1)))))
				t0 := time.Now()
				if err := tx.Commit(ctx); err != nil {
					return n, err
				}
				lat.add(time.Since(t0))
				n++
			}
			return n, nil
		})
		cl.Close()
		if errs > 0 {
			return nil, fmt.Errorf("e9 %s: %d workers failed", cfg.name, errs)
		}
		table.Rows = append(table.Rows, Row{Cells: []string{
			cfg.name,
			fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
			fmtDur(lat.mean()), fmtDur(lat.percentile(0.99)),
		}})
	}
	return table, nil
}

// atomic64 is a tiny counter helper.
type atomic64 struct{ v atomic.Int64 }

func (a *atomic64) add(d int64) { a.v.Add(d) }
func (a *atomic64) load() int64 { return a.v.Load() }
