// Package bench implements the paper-reproduction experiments E1–E8
// (see DESIGN.md's experiment index). Each experiment builds its own
// in-process cluster, drives a workload, and returns rows shaped like
// the corresponding table or figure in the paper's evaluation. The
// ybench command prints them; bench_test.go wires them into go test
// -bench.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Row is one line of an experiment's output table.
type Row struct {
	Cells []string
}

// Table is one experiment's result.
type Table struct {
	Title   string
	Comment string
	Header  []string
	Rows    []Row
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", t.Title)
	if t.Comment != "" {
		for _, line := range strings.Split(t.Comment, "\n") {
			fmt.Fprintf(&sb, "# %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r.Cells {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r.Cells)
	}
	return sb.String()
}

// latencies records operation durations for percentile reporting.
type latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	if len(l.samples) < 1<<20 {
		l.samples = append(l.samples, d)
	}
	l.mu.Unlock()
}

func (l *latencies) percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (l *latencies) mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// runFor runs workers copies of fn until the duration elapses, counting
// completed operations. fn returns the number of ops it performed (or
// 0 on error, which is counted separately).
func runFor(d time.Duration, workers int, fn func(worker int) (int, error)) (ops uint64, errs uint64, elapsed time.Duration) {
	var opCount, errCount atomic.Uint64
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n, err := fn(w)
				if err != nil {
					errCount.Add(1)
					continue
				}
				opCount.Add(uint64(n))
			}
		}(w)
	}
	wg.Wait()
	return opCount.Load(), errCount.Load(), time.Since(start)
}

func opsPerSec(ops uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

func fmtF(v float64) string { return fmt.Sprintf("%.0f", v) }

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.String()
	}
}

// Params are the shared knobs of all experiments.
type Params struct {
	Duration time.Duration // per measured point
	Records  int           // dataset size
	Workers  int           // concurrent client goroutines (default per experiment)
	Servers  []int         // server counts for scaling experiments
	Verbose  bool
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Duration == 0 {
		p.Duration = 2 * time.Second
	}
	if p.Records == 0 {
		p.Records = 10000
	}
	if p.Workers == 0 {
		p.Workers = 16
	}
	if len(p.Servers) == 0 {
		p.Servers = []int{1, 2, 4, 8}
	}
	return p
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Name  string
	Run   func(ctx context.Context, p Params) (*Table, error)
	Bench bool // include in go test -bench wiring
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"e1", "YDBT operation microbenchmark", RunE1, true},
		{"e2", "YDBT scalability with storage servers", RunE2, true},
		{"e3", "YCSB A-F: Yesquel vs NOSQL comparator", RunE3, true},
		{"e4", "Wikipedia: Yesquel vs centralized SQL", RunE4, true},
		{"e5", "Ablation of YDBT optimizations", RunE5, true},
		{"e6", "Commit latency vs participants", RunE6, true},
		{"e7", "Scan throughput vs naive DBT", RunE7, true},
		{"e8", "SQL statement microbenchmarks", RunE8, true},
		{"e9", "Replication overhead on the write path", RunE9, true},
	}
}
