module yesquel

go 1.21
